package proto

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ghba/internal/trace"
)

// This file implements the batch RPC paths: the coordinator carries a whole
// vector of operations per wire round, so syscalls, frame headers, digest
// computation and daemon lock acquisitions amortize across the vector. The
// semantics mirror the serial per-op paths exactly — same level resolution,
// same homes-map linearization, same RNG draw pattern (one draw per create
// or lookup in op order, none per delete) — so a fixed-seed trace replays
// onto the same homes whichever path drives it.

// LookupBatch resolves a vector of paths through the batch RPCs, drawing
// each path's entry MDS from rng in path order. Results align with paths;
// Latency and Messages on each result are amortized shares of the whole
// vector's cost (homes, existence and levels are exact per path).
func (c *Cluster) LookupBatch(ctx context.Context, rng *rand.Rand, paths []string) ([]LookupResult, error) {
	ids := c.snapshotIDs()
	entries := make([]int, len(paths))
	for i := range paths {
		entries[i] = ids[rng.Intn(len(ids))]
	}
	return c.lookupVector(ctx, paths, entries)
}

// ApplyBatch dispatches a vector of trace records through the batch RPCs.
// RNG draws happen in op order (one per create or open, none per delete).
// Execution is wave-scheduled: each op's wave is its position in its own
// path's kind-alternation chain — the first run of same-kind ops on a path
// is wave 0, the next kind on that path wave 1, and so on — and waves
// execute in order, each as up to three batch vectors (creates, then
// deletes, then lookups). Within a wave the vectors are path-disjoint by
// construction, so their relative order cannot change any per-path outcome,
// while cross-kind dependencies on one path (a create before a lookup or
// delete of that path) land exactly as a serial Apply loop would place
// them. A mixed window thus collapses into a handful of maximal vectors
// instead of one run per kind change. Per-op homes and existence results
// are identical to the serial path's; lookup levels can differ when a
// reordered unrelated mutation shifts a filter's false-positive pattern.
// Results align with recs.
func (c *Cluster) ApplyBatch(ctx context.Context, rng *rand.Rand, recs []trace.Record) ([]LookupResult, error) {
	if len(recs) == 0 {
		return nil, nil
	}
	results := make([]LookupResult, len(recs))
	// Pass 1: the draws, in op order, before any RPC — the serial draw
	// pattern, so a fixed seed homes every file identically.
	ids := c.snapshotIDs()
	draws := make([]int, len(recs))
	for i, rec := range recs {
		if rec.Op != trace.OpDelete {
			draws[i] = ids[rng.Intn(len(ids))]
		}
	}
	// Pass 2: assign waves along each path's kind-alternation chain.
	type pathState struct {
		kind trace.OpType
		wave int
	}
	type wave struct {
		creates, deletes, lookups []int
	}
	last := make(map[string]pathState)
	var waves []wave
	for i, rec := range recs {
		kind := runKind(rec.Op)
		w := 0
		if st, ok := last[rec.Path]; ok {
			w = st.wave
			if st.kind != kind {
				w++
			}
		}
		last[rec.Path] = pathState{kind: kind, wave: w}
		for len(waves) <= w {
			waves = append(waves, wave{})
		}
		switch kind {
		case trace.OpCreate:
			waves[w].creates = append(waves[w].creates, i)
		case trace.OpDelete:
			waves[w].deletes = append(waves[w].deletes, i)
		default:
			waves[w].lookups = append(waves[w].lookups, i)
		}
	}
	// Pass 3: execute the waves in order.
	for _, wv := range waves {
		if len(wv.creates) > 0 {
			if err := c.createRun(ctx, recs, draws, wv.creates, results); err != nil {
				return nil, err
			}
		}
		if len(wv.deletes) > 0 {
			if err := c.deleteRun(ctx, recs, wv.deletes, results); err != nil {
				return nil, err
			}
		}
		if len(wv.lookups) > 0 {
			if err := c.lookupRun(ctx, recs, draws, wv.lookups, results); err != nil {
				return nil, err
			}
		}
	}
	return results, nil
}

// runKind collapses operation types into the three execution kinds a batch
// splits into; everything that is not a mutation replays as a lookup.
func runKind(op trace.OpType) trace.OpType {
	switch op {
	case trace.OpCreate, trace.OpDelete:
		return op
	default:
		return trace.OpOpen
	}
}

// createRun executes one vector of creates (idxs index into recs, in op
// order): homes-map claims resolve in op order (the linearization point, as
// in the serial path), fresh creates group into one opCreateBatch per home
// daemon, and creates of existing paths degenerate to opens — run as a
// lookup vector after the creates land, so an open of a path created
// earlier in the same vector finds it.
func (c *Cluster) createRun(ctx context.Context, recs []trace.Record, draws []int, idxs []int, out []LookupResult) error {
	byHome := make(map[int][]int)
	var opens []int
	c.homesMu.Lock()
	for _, i := range idxs {
		if _, exists := c.homes[recs[i].Path]; exists {
			opens = append(opens, i)
			continue
		}
		c.homes[recs[i].Path] = draws[i]
		byHome[draws[i]] = append(byHome[draws[i]], i)
	}
	c.homesMu.Unlock()

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	var crossedHomes []int
	for home, idxs := range byHome {
		wg.Add(1)
		go func(home int, idxs []int) {
			defer wg.Done()
			sub := make([]string, len(idxs))
			for k, i := range idxs {
				sub[k] = recs[i].Path
			}
			resp, err := c.call(ctx, home, opCreateBatch, encodePaths(sub), nil)
			var crossed bool
			if err == nil {
				crossed, err = decodeCreateResp(resp)
			}
			if err != nil {
				// The daemon never homed these files; withdraw the claims so
				// ground truth does not drift from daemon state.
				c.homesMu.Lock()
				for _, i := range idxs {
					delete(c.homes, recs[i].Path)
				}
				c.homesMu.Unlock()
				mu.Lock()
				errs = append(errs, fmt.Errorf("proto: create batch at MDS %d: %w", home, err))
				mu.Unlock()
				return
			}
			if crossed {
				mu.Lock()
				crossedHomes = append(crossedHomes, home)
				mu.Unlock()
			}
		}(home, idxs)
	}
	wg.Wait()
	if len(errs) > 0 {
		// Goroutines appended under map-iteration fan-out; order the join
		// deterministically so error text is seed-stable.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return errors.Join(errs...)
	}
	perLat := amortized(time.Since(start), len(idxs)-len(opens))
	for home, idxs := range byHome {
		for _, i := range idxs {
			out[i] = LookupResult{Home: home, Found: true, Level: 0, Latency: perLat}
		}
	}
	// Threshold crossings feed the coalescing ship queue in ascending home
	// order — the order the serial loop's drains preserve.
	sort.Ints(crossedHomes)
	for _, home := range crossedHomes {
		if err := c.shipBatch(ctx, c.ships.Note(home)); err != nil {
			return err
		}
	}
	if len(opens) > 0 {
		paths := make([]string, len(opens))
		entries := make([]int, len(opens))
		for k, i := range opens {
			paths[k] = recs[i].Path
			entries[k] = draws[i]
		}
		res, err := c.lookupVector(ctx, paths, entries)
		if err != nil {
			return err
		}
		for k, i := range opens {
			out[i] = res[k]
		}
	}
	return nil
}

// deleteRun executes one vector of deletes: claims removed in op order, one
// opDeleteBatch per home daemon, rebuilds routed into the ship queue.
func (c *Cluster) deleteRun(ctx context.Context, recs []trace.Record, idxs []int, out []LookupResult) error {
	byHome := make(map[int][]int)
	c.homesMu.Lock()
	for _, i := range idxs {
		home, ok := c.homes[recs[i].Path]
		if !ok {
			// A second delete of the same path within the vector misses here
			// too: the first removal already claimed it.
			out[i] = LookupResult{Home: -1, Found: false, Level: 0}
			continue
		}
		delete(c.homes, recs[i].Path)
		byHome[home] = append(byHome[home], i)
	}
	c.homesMu.Unlock()
	if len(byHome) == 0 {
		return nil
	}

	start := time.Now()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	var rebuiltHomes []int
	total := 0
	for _, idxs := range byHome {
		total += len(idxs)
	}
	for home, idxs := range byHome {
		wg.Add(1)
		go func(home int, idxs []int) {
			defer wg.Done()
			sub := make([]string, len(idxs))
			for k, i := range idxs {
				sub[k] = recs[i].Path
			}
			resp, err := c.call(ctx, home, opDeleteBatch, encodePaths(sub), nil)
			if err != nil {
				// The daemon may still hold the files; restore the claims so
				// ground truth stays consistent (a racing create of the same
				// path has priority and keeps its new home).
				c.homesMu.Lock()
				for _, i := range idxs {
					if _, reclaimed := c.homes[recs[i].Path]; !reclaimed {
						c.homes[recs[i].Path] = home
					}
				}
				c.homesMu.Unlock()
				mu.Lock()
				errs = append(errs, fmt.Errorf("proto: delete batch at MDS %d: %w", home, err))
				mu.Unlock()
				return
			}
			if len(resp) != len(idxs)+1 {
				mu.Lock()
				errs = append(errs, fmt.Errorf("proto: delete batch response wants %d bytes, got %d", len(idxs)+1, len(resp)))
				mu.Unlock()
				return
			}
			if resp[len(idxs)] == 1 {
				mu.Lock()
				rebuiltHomes = append(rebuiltHomes, home)
				mu.Unlock()
			}
		}(home, idxs)
	}
	wg.Wait()
	if len(errs) > 0 {
		// Goroutines appended under map-iteration fan-out; order the join
		// deterministically so error text is seed-stable.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return errors.Join(errs...)
	}
	perLat := amortized(time.Since(start), total)
	for home, idxs := range byHome {
		for _, i := range idxs {
			out[i] = LookupResult{Home: home, Found: true, Level: 0, Latency: perLat}
		}
	}
	sort.Ints(rebuiltHomes)
	for _, home := range rebuiltHomes {
		if err := c.shipBatch(ctx, c.ships.Note(home)); err != nil {
			return err
		}
	}
	return nil
}

// lookupRun resolves one vector of reads with the pre-drawn entries.
func (c *Cluster) lookupRun(ctx context.Context, recs []trace.Record, draws []int, idxs []int, out []LookupResult) error {
	paths := make([]string, len(idxs))
	entries := make([]int, len(idxs))
	for k, i := range idxs {
		paths[k] = recs[i].Path
		entries[k] = draws[i]
	}
	res, err := c.lookupVector(ctx, paths, entries)
	if err != nil {
		return err
	}
	for k, i := range idxs {
		out[i] = res[k]
	}
	return nil
}

// lookupVector resolves paths[i] entering at entries[i], batching every
// level of the hierarchy: one opLookupBatch per distinct entry daemon,
// opVerifyBatch per candidate daemon, one opQueryMemberBatch per groupmate
// (L3), and one opHasLocalBatch scatter-gather across all daemons (L4).
func (c *Cluster) lookupVector(ctx context.Context, paths []string, entries []int) ([]LookupResult, error) {
	if len(paths) == 0 {
		return nil, nil
	}
	start := time.Now()
	var msgs atomic.Int64
	results := make([]LookupResult, len(paths))
	resolved := make([]bool, len(paths))

	// Entry leg: L1 + L2 hits for every path, one RPC per distinct entry.
	byEntry := make(map[int][]int)
	for i, e := range entries {
		byEntry[e] = append(byEntry[e], i)
	}
	l1 := make([][]int, len(paths))
	l2 := make([][]int, len(paths))
	{
		var wg sync.WaitGroup
		var mu sync.Mutex
		var errs []error
		for e, idxs := range byEntry {
			wg.Add(1)
			go func(e int, idxs []int) {
				defer wg.Done()
				sub := make([]string, len(idxs))
				for k, i := range idxs {
					sub[k] = paths[i]
				}
				resp, err := c.call(ctx, e, opLookupBatch, encodePaths(sub), &msgs)
				var hits [][]int
				if err == nil {
					hits, err = decodeHitsVec(resp, 2*len(idxs))
				}
				if err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("proto: lookup batch at MDS %d: %w", e, err))
					mu.Unlock()
					return
				}
				for k, i := range idxs {
					l1[i], l2[i] = hits[2*k], hits[2*k+1]
				}
			}(e, idxs)
		}
		wg.Wait()
		if len(errs) > 0 {
			// Goroutines appended under map-iteration fan-out; order the join
			// deterministically so error text is seed-stable.
			sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
			return nil, errors.Join(errs...)
		}
	}

	finish := func(i, home, level int) {
		results[i] = LookupResult{Home: home, Found: true, Level: level}
		resolved[i] = true
	}

	// L1 + L2 verification in one speculative round: every unique L1 hit
	// and every distinct unique L2 hit verify together, and resolution
	// applies the serial order (L1 first, then L2), so homes and levels
	// match the one-level-at-a-time walk without paying two round trips. A
	// path whose L2 candidate equals its L1 candidate skips the duplicate:
	// the opVerify answer is an authoritative store check, so asking the
	// same daemon twice cannot change it.
	candsL1 := make(map[int]int)
	candsL2 := make(map[int]int)
	var pairs []verifyPair
	for i := range paths {
		if len(l1[i]) == 1 {
			candsL1[i] = l1[i][0]
			pairs = append(pairs, verifyPair{idx: i, daemon: l1[i][0]})
		}
		if len(l2[i]) == 1 {
			id := l2[i][0]
			if prev, had := candsL1[i]; had && prev == id {
				continue
			}
			candsL2[i] = id
			pairs = append(pairs, verifyPair{idx: i, daemon: id})
		}
	}
	ans, err := c.verifyPairs(ctx, paths, pairs, &msgs)
	if err != nil {
		return nil, err
	}
	for i := range paths {
		if d, ok := candsL1[i]; ok && ans[verifyPair{idx: i, daemon: d}] {
			finish(i, d, 1)
			continue
		}
		if d, ok := candsL2[i]; ok && ans[verifyPair{idx: i, daemon: d}] {
			finish(i, d, 2)
		}
	}

	// L3 (G-HBA only): one scatter-gather round over the unresolved paths'
	// group members, grouped by target daemon — daemon m answers for every
	// pending path whose entry shares m's group, so the round costs one RPC
	// per distinct groupmate instead of one per entry × groupmate. The
	// union covers the groupmates' arrays only — each path's own entry
	// already had its chance above, exactly as in the serial path.
	if c.opts.Mode == ModeGHBA {
		byTarget := make(map[int][]int)
		unions := make([]map[int]struct{}, len(paths))
		for i := range paths {
			if resolved[i] {
				continue
			}
			members := c.groupMembers(entries[i])
			if members == nil {
				continue
			}
			unions[i] = make(map[int]struct{})
			for _, m := range members {
				if m == entries[i] {
					continue
				}
				byTarget[m] = append(byTarget[m], i)
			}
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		var errs []error
		for m, idxs := range byTarget {
			wg.Add(1)
			go func(m int, idxs []int) {
				defer wg.Done()
				sub := make([]string, len(idxs))
				for k, i := range idxs {
					sub[k] = paths[i]
				}
				resp, err := c.call(ctx, m, opQueryMemberBatch, encodePaths(sub), &msgs)
				var hits [][]int
				if err == nil {
					hits, err = decodeHitsVec(resp, len(idxs))
				}
				if err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("proto: member batch at MDS %d: %w", m, err))
					mu.Unlock()
					return
				}
				mu.Lock()
				for k, i := range idxs {
					for _, h := range hits[k] {
						unions[i][h] = struct{}{}
					}
				}
				mu.Unlock()
			}(m, idxs)
		}
		wg.Wait()
		if len(errs) > 0 {
			// Goroutines appended under map-iteration fan-out; order the join
			// deterministically so error text is seed-stable.
			sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
			return nil, errors.Join(errs...)
		}
		candsL3 := make(map[int]int)
		var pairs3 []verifyPair
		for i := range paths {
			if resolved[i] || len(unions[i]) != 1 {
				continue
			}
			// unions[i] holds exactly one daemon here; extract it before
			// appending so pairs3 never accumulates in map-iteration order.
			var h int
			for sole := range unions[i] {
				h = sole
			}
			candsL3[i] = h
			pairs3 = append(pairs3, verifyPair{idx: i, daemon: h})
		}
		ans3, err := c.verifyPairs(ctx, paths, pairs3, &msgs)
		if err != nil {
			return nil, err
		}
		for i, d := range candsL3 {
			if ans3[verifyPair{idx: i, daemon: d}] {
				finish(i, d, 3)
			}
		}
	}

	// L4: one global scatter-gather round for everything still unresolved.
	var rem []int
	for i := range paths {
		if !resolved[i] {
			rem = append(rem, i)
		}
	}
	if len(rem) > 0 {
		sub := make([]string, len(rem))
		for k, i := range rem {
			sub[k] = paths[i]
		}
		homes, err := c.hasLocalVector(ctx, sub, &msgs)
		if err != nil {
			return nil, err
		}
		for k, i := range rem {
			results[i] = LookupResult{Home: homes[k], Found: homes[k] >= 0, Level: 4}
			resolved[i] = true
		}
	}

	// Finalize: tally, observe, and amortize the vector's cost per path.
	// The whole vector's confirmed lookups feed the L1 learning pipeline as
	// one bulk append, so a large vector multicasts at most one observation
	// batch instead of one per ObserveBatch lookups.
	perLat := amortized(time.Since(start), len(paths))
	perMsg := int(msgs.Load()) / len(paths)
	var obs []observation
	for i := range results {
		results[i].Latency = perLat
		results[i].Messages = perMsg
		c.tally.Record(results[i].Level)
		if results[i].Found {
			obs = append(obs, observation{home: results[i].Home, path: paths[i]})
		}
	}
	return results, c.observeMany(ctx, obs)
}

// verifyPair is one (path index, candidate daemon) verification probe.
type verifyPair struct {
	idx, daemon int
}

// verifyPairs issues one opVerifyBatch per distinct candidate daemon for
// the probe set — a path may carry probes at several daemons in the same
// round — and returns the authoritative answer per probe.
func (c *Cluster) verifyPairs(ctx context.Context, paths []string, pairs []verifyPair, ctr *atomic.Int64) (map[verifyPair]bool, error) {
	if len(pairs) == 0 {
		return nil, nil
	}
	byDaemon := make(map[int][]int)
	for _, p := range pairs {
		byDaemon[p.daemon] = append(byDaemon[p.daemon], p.idx)
	}
	answers := make(map[verifyPair]bool, len(pairs))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	for d, idxs := range byDaemon {
		sort.Ints(idxs)
		wg.Add(1)
		go func(d int, idxs []int) {
			defer wg.Done()
			sub := make([]string, len(idxs))
			for k, i := range idxs {
				sub[k] = paths[i]
			}
			resp, err := c.call(ctx, d, opVerifyBatch, encodePaths(sub), ctr)
			var bs []bool
			if err == nil {
				bs, err = decodeBools(resp, len(idxs))
			}
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				errs = append(errs, fmt.Errorf("proto: verify batch at MDS %d: %w", d, err))
				return
			}
			for k, i := range idxs {
				answers[verifyPair{idx: i, daemon: d}] = bs[k]
			}
		}(d, idxs)
	}
	wg.Wait()
	if len(errs) > 0 {
		// Goroutines appended under map-iteration fan-out; order the join
		// deterministically so error text is seed-stable.
		sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
		return nil, errors.Join(errs...)
	}
	return answers, nil
}

// hasLocalVector is the batched L4 round: every daemon receives the whole
// remaining vector, and homes[i] is the daemon that authoritatively homes
// paths[i] (-1 when none does). On the mux transport the gather cancels the
// remaining probes once every path has found its home — only the true home
// answers positive, so the first positive per path is decisive.
func (c *Cluster) hasLocalVector(ctx context.Context, paths []string, ctr *atomic.Int64) ([]int, error) {
	ids := c.snapshotIDs()
	payload := encodePaths(paths)
	searchCtx := ctx
	cancelRest := func() {}
	if c.useMux {
		var cancel context.CancelFunc
		searchCtx, cancel = context.WithCancel(ctx)
		defer cancel()
		cancelRest = cancel
	}
	homes := make([]int, len(paths))
	for i := range homes {
		homes[i] = -1
	}
	unresolved := len(paths)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, len(ids))
	for _, id := range ids {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			resp, err := c.call(searchCtx, id, opHasLocalBatch, payload, ctr)
			var answers []bool
			if err == nil {
				answers, err = decodeBools(resp, len(paths))
			}
			if err != nil {
				errCh <- fmt.Errorf("proto: has-local batch at MDS %d: %w", id, err)
				return
			}
			mu.Lock()
			for i, has := range answers {
				if has && homes[i] == -1 {
					homes[i] = id
					unresolved--
				}
			}
			if unresolved == 0 {
				cancelRest()
			}
			mu.Unlock()
		}(id)
	}
	wg.Wait()
	close(errCh)
	mu.Lock()
	done := unresolved == 0
	mu.Unlock()
	for err := range errCh {
		// Probes the winner cancelled are expected, not failures — but only
		// when the cancellation was ours, not the caller's.
		if done && errors.Is(err, context.Canceled) && ctx.Err() == nil {
			continue
		}
		return nil, err
	}
	return homes, nil
}

// amortized spreads one batch's wall-clock cost over its operations.
func amortized(d time.Duration, n int) time.Duration {
	if n <= 0 {
		return 0
	}
	return d / time.Duration(n)
}
