package proto

import (
	"context"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"ghba/internal/rpcnet"
)

// durableOptions is testOptions plus a WAL directory and a retry policy —
// the configuration every crash/recovery test runs under.
func durableOptions(t *testing.T, n, m int, mode Mode) Options {
	t.Helper()
	o := testOptions(n, m, mode)
	o.DataDir = t.TempDir()
	o.SnapshotEvery = 50
	o.Retry = rpcnet.RetryPolicy{Attempts: 4, Backoff: 5 * time.Millisecond, MaxBackoff: 50 * time.Millisecond}
	return o
}

// createFiles homes count files over the RPC (WAL-logged) path.
func createFiles(t *testing.T, c *Cluster, count int) []string {
	t.Helper()
	paths := make([]string, count)
	for i := range paths {
		paths[i] = "/wal/f" + strconv.Itoa(i)
		if _, err := c.Create(context.Background(), paths[i]); err != nil {
			t.Fatalf("create %s: %v", paths[i], err)
		}
	}
	return paths
}

// verifySweep looks up every path and fails on any wrong-home or lost-file
// answer against the coordinator's ground truth.
func verifySweep(t *testing.T, c *Cluster, paths []string) {
	t.Helper()
	for _, p := range paths {
		want := c.HomeOf(p)
		res, err := c.Lookup(context.Background(), p)
		if err != nil {
			t.Fatalf("lookup %s: %v", p, err)
		}
		if want < 0 {
			if res.Found {
				t.Fatalf("lookup %s: found at %d, ground truth says gone", p, res.Home)
			}
			continue
		}
		if !res.Found || res.Home != want {
			t.Fatalf("lookup %s = %+v, ground truth home %d", p, res, want)
		}
	}
}

func TestHeartbeat(t *testing.T) {
	c := startPopulated(t, 4, 2, ModeGHBA, 50)
	for _, id := range c.MDSIDs() {
		info, err := c.Heartbeat(context.Background(), id)
		if err != nil {
			t.Fatalf("heartbeat %d: %v", id, err)
		}
		if info.ID != id {
			t.Fatalf("heartbeat %d answered by %d", id, info.ID)
		}
	}
	var total uint64
	for _, id := range c.MDSIDs() {
		info, _ := c.Heartbeat(context.Background(), id)
		total += info.Files
	}
	if total != 50 {
		t.Fatalf("heartbeat file counts sum to %d, want 50", total)
	}
	if err := c.KillMDS(1); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	if _, err := c.Heartbeat(ctx, 1); err == nil {
		t.Fatal("heartbeat to a killed daemon succeeded")
	}
}

func TestStartRefusesDirtyDataDir(t *testing.T) {
	opts := durableOptions(t, 3, 2, ModeGHBA)
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	createFiles(t, c, 20)
	c.Close()
	if _, err := Start(opts); err == nil {
		t.Fatal("Start accepted a data dir with existing state")
	} else if !strings.Contains(err.Error(), "already holds state") {
		t.Fatalf("wrong refusal: %v", err)
	}
}

func TestStartRejectsBadWALSync(t *testing.T) {
	opts := testOptions(2, 2, ModeGHBA)
	opts.WALSync = "sometimes"
	if _, err := Start(opts); err == nil {
		t.Fatal("unknown WAL sync policy accepted")
	}
}

func TestKillRestartInPlace(t *testing.T) {
	for _, mode := range []Mode{ModeGHBA, ModeHBA} {
		t.Run(mode.String(), func(t *testing.T) {
			c, err := Start(durableOptions(t, 4, 2, mode))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(c.Close)
			paths := createFiles(t, c, 120)

			victim := c.MDSIDs()[1]
			if err := c.KillMDS(victim); err != nil {
				t.Fatal(err)
			}
			rep, err := c.RestartMDS(context.Background(), victim)
			if err != nil {
				t.Fatalf("restart: %v", err)
			}
			if rep.Rejoined {
				t.Fatal("in-place restart reported a rejoin")
			}
			if rep.TailLost != 0 {
				// An in-process kill never drops the page cache, so even a
				// weak sync policy loses nothing.
				t.Fatalf("restart lost %d tail files", rep.TailLost)
			}
			if rep.Recovery.Files == 0 {
				t.Fatal("recovery reconstructed an empty daemon")
			}
			if c.NumMDS() != 4 {
				t.Fatalf("membership shrank to %d", c.NumMDS())
			}
			verifySweep(t, c, paths)
		})
	}
}

func TestFailMDSRemovesDaemon(t *testing.T) {
	for _, mode := range []Mode{ModeGHBA, ModeHBA} {
		t.Run(mode.String(), func(t *testing.T) {
			c := startPopulated(t, 5, 2, mode, 200)
			victim := c.MDSIDs()[2]
			lostTruth := 0
			for i := 0; i < 200; i++ {
				if c.HomeOf("/p/f"+strconv.Itoa(i)) == victim {
					lostTruth++
				}
			}
			c.KillMDS(victim) //nolint:errcheck // victim verified present above
			rep, err := c.FailMDS(context.Background(), victim)
			if err != nil {
				t.Fatalf("FailMDS: %v", err)
			}
			if rep.FilesLost != lostTruth {
				t.Fatalf("FilesLost = %d, ground truth had %d at MDS %d", rep.FilesLost, lostTruth, victim)
			}
			if c.NumMDS() != 4 {
				t.Fatalf("membership = %d after failover", c.NumMDS())
			}
			for _, id := range c.MDSIDs() {
				if id == victim {
					t.Fatal("failed daemon still in membership")
				}
			}
			// Every surviving file resolves correctly; the dead daemon's
			// files read as gone, never as a wrong home.
			paths := make([]string, 200)
			for i := range paths {
				paths[i] = "/p/f" + strconv.Itoa(i)
			}
			verifySweep(t, c, paths)
			if _, err := c.FailMDS(context.Background(), victim); err == nil {
				t.Fatal("failing an already-removed daemon succeeded")
			}
		})
	}
}

func TestFailMDSRefusesLastDaemon(t *testing.T) {
	c, err := Start(testOptions(1, 1, ModeGHBA))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	if _, err := c.FailMDS(context.Background(), 0); err == nil {
		t.Fatal("failed the last daemon")
	}
}

func TestRestartAfterFailoverReclaimsFiles(t *testing.T) {
	c, err := Start(durableOptions(t, 4, 2, ModeGHBA))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	paths := createFiles(t, c, 150)

	victim := c.MDSIDs()[0]
	rep, err := c.FailMDS(context.Background(), victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesLost == 0 {
		t.Skip("victim homed no files under this seed; nothing to reclaim")
	}
	rr, err := c.RestartMDS(context.Background(), victim)
	if err != nil {
		t.Fatalf("restart after failover: %v", err)
	}
	if !rr.Rejoined {
		t.Fatal("post-failover restart did not rejoin")
	}
	if rr.FilesReclaimed != rep.FilesLost {
		t.Fatalf("reclaimed %d files, failover lost %d", rr.FilesReclaimed, rep.FilesLost)
	}
	if c.NumMDS() != 4 {
		t.Fatalf("membership = %d after rejoin", c.NumMDS())
	}
	verifySweep(t, c, paths)
	for _, p := range paths {
		if c.HomeOf(p) < 0 {
			t.Fatalf("%s still missing from ground truth after reclaim", p)
		}
	}
}

func TestRestartConflictsDropRecoveredCopy(t *testing.T) {
	c, err := Start(durableOptions(t, 3, 3, ModeGHBA))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	paths := createFiles(t, c, 60)

	victim := c.MDSIDs()[0]
	rep, err := c.FailMDS(context.Background(), victim)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FilesLost == 0 {
		t.Skip("victim homed no files under this seed")
	}
	// Re-create every scrubbed path at a survivor before the victim comes
	// back: the survivor's copy must win.
	recreated := 0
	for _, p := range paths {
		if c.HomeOf(p) < 0 {
			if _, err := c.Create(context.Background(), p); err != nil {
				t.Fatal(err)
			}
			recreated++
		}
	}
	rr, err := c.RestartMDS(context.Background(), victim)
	if err != nil {
		t.Fatal(err)
	}
	if rr.FilesDropped != recreated {
		t.Fatalf("dropped %d recovered copies, want %d", rr.FilesDropped, recreated)
	}
	if rr.FilesReclaimed != 0 {
		t.Fatalf("reclaimed %d files that a survivor already homed", rr.FilesReclaimed)
	}
	verifySweep(t, c, paths)
}

func TestDetectorDrivesFailover(t *testing.T) {
	c, err := Start(durableOptions(t, 4, 2, ModeGHBA))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	paths := createFiles(t, c, 80)

	var mu sync.Mutex
	var seen []transition
	d := c.StartDetector(DetectorOptions{
		Interval:     20 * time.Millisecond,
		SuspectAfter: 2,
		DeadAfter:    4,
		OnTransition: func(id int, from, to Health) {
			mu.Lock()
			seen = append(seen, transition{id, from, to})
			mu.Unlock()
		},
	})
	t.Cleanup(d.Stop)

	victim := c.MDSIDs()[3]
	if err := c.KillMDS(victim); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for d.Failovers() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("detector never failed MDS %d over; state=%v", victim, d.State(victim))
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := d.State(victim); got != HealthDead {
		t.Fatalf("victim state = %v, want dead", got)
	}
	if c.NumMDS() != 3 {
		t.Fatalf("membership = %d after automatic failover", c.NumMDS())
	}
	mu.Lock()
	var victimStates []Health
	for _, tr := range seen {
		if tr.id == victim {
			victimStates = append(victimStates, tr.to)
		}
	}
	mu.Unlock()
	if len(victimStates) < 2 || victimStates[0] != HealthSuspect || victimStates[len(victimStates)-1] != HealthDead {
		t.Fatalf("victim escalated %v, want suspect then dead", victimStates)
	}
	// Healthy daemons never left Alive.
	for _, id := range c.MDSIDs() {
		if got := d.State(id); got != HealthAlive {
			t.Fatalf("live MDS %d reported %v", id, got)
		}
	}
	verifySweep(t, c, paths)
}

func TestDetectorStopIdempotent(t *testing.T) {
	c := startPopulated(t, 2, 2, ModeGHBA, 10)
	d := c.StartDetector(DetectorOptions{Interval: 10 * time.Millisecond})
	d.Stop()
	d.Stop()
	if d.Failovers() != 0 {
		t.Fatal("detector failed something over in a healthy cluster")
	}
}

func TestHealthString(t *testing.T) {
	for h, want := range map[Health]string{HealthAlive: "alive", HealthSuspect: "suspect", HealthDead: "dead", Health(9): "unknown"} {
		if h.String() != want {
			t.Fatalf("Health(%d).String() = %q, want %q", int(h), h.String(), want)
		}
	}
}

// TestWALSnapshotCadence drives enough mutations through one daemon to
// cross SnapshotEvery and checks the heartbeat's WAL counter resets —
// compaction happened inside the request path.
func TestWALSnapshotCadence(t *testing.T) {
	opts := durableOptions(t, 1, 1, ModeGHBA)
	opts.SnapshotEvery = 25
	c, err := Start(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	maxSeen := uint64(0)
	for i := 0; i < 120; i++ {
		if _, err := c.Create(context.Background(), "/cadence/"+strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
		info, err := c.Heartbeat(context.Background(), 0)
		if err != nil {
			t.Fatal(err)
		}
		if info.WALRecords > maxSeen {
			maxSeen = info.WALRecords
		}
		if info.WALRecords > 25 {
			t.Fatalf("WAL grew to %d records; compaction cadence 25 never fired", info.WALRecords)
		}
	}
	if maxSeen == 0 {
		t.Fatal("heartbeat never reported WAL growth; is the WAL wired in?")
	}
}
