package proto

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"ghba/internal/trace"
)

// intner is the single-draw interface the mutation paths need from a
// randomness source; *rand.Rand satisfies it, and the cluster's own RNG is
// adapted through lockedRand so the serial API stays usable next to
// parallel workers. The draw pattern mirrors core's exactly — one draw per
// create or lookup, none per delete — so a simulation and a prototype
// replaying the same trace with equally seeded RNGs place every file on the
// same home MDS.
type intner interface {
	Intn(n int) int
}

type lockedRand struct{ c *Cluster }

func (l lockedRand) Intn(n int) int {
	l.c.rngMu.Lock()
	v := l.c.rng.Intn(n)
	l.c.rngMu.Unlock()
	return v
}

// Create homes a new file at an RNG-chosen daemon over RPC and feeds the
// coalescing ship queue when the home's filter crosses the XOR-delta
// threshold. Returns the home MDS ID. Creating an existing path re-homes
// it; use HomeOf to guard (Apply's create has the degenerate-open
// semantics instead).
func (c *Cluster) Create(ctx context.Context, path string) (int, error) {
	ids := c.snapshotIDs()
	home := ids[lockedRand{c}.Intn(len(ids))]
	c.homesMu.Lock()
	prev, existed := c.homes[path]
	c.homes[path] = home
	c.homesMu.Unlock()
	crossed, err := c.createAt(ctx, home, path, nil)
	if err != nil {
		// The daemon never homed the file; withdraw the claim (restoring
		// any re-homed predecessor) so ground truth does not drift from
		// daemon state.
		c.homesMu.Lock()
		if existed {
			c.homes[path] = prev
		} else {
			delete(c.homes, path)
		}
		c.homesMu.Unlock()
		return -1, err
	}
	if crossed {
		// The create itself succeeded; a ship failure (say, a replica
		// holder dying mid-failover) leaves a stale replica that lookups
		// tolerate — it must not withdraw the claim of a homed file.
		if err := c.shipBatch(ctx, c.ships.Note(home)); err != nil {
			return home, err
		}
	}
	return home, nil
}

// createAt sends the create RPC to the chosen home, reporting whether the
// home's filter crossed the XOR-delta ship threshold. Callers route a
// crossing into the ship queue once the homes-map claim is settled: a ship
// failure must never be mistaken for a failed create.
func (c *Cluster) createAt(ctx context.Context, home int, path string, ctr *atomic.Int64) (bool, error) {
	resp, err := c.call(ctx, home, opCreateFile, []byte(path), ctr)
	if err != nil {
		return false, err
	}
	return decodeCreateResp(resp)
}

// Delete removes a file from its home over RPC, reporting whether it
// existed. The home's filter goes stale until its rebuild threshold
// triggers; a rebuild replaces the filter wholesale and ships through the
// coalescing queue.
func (c *Cluster) Delete(ctx context.Context, path string) (bool, error) {
	_, existed, err := c.deleteInner(ctx, path, nil)
	return existed, err
}

// deleteInner removes path, returning its pre-delete home (-1 when absent)
// and whether it existed. The homes-map removal is the linearization point,
// mirroring core's shard-locked delete.
func (c *Cluster) deleteInner(ctx context.Context, path string, ctr *atomic.Int64) (int, bool, error) {
	c.homesMu.Lock()
	home, ok := c.homes[path]
	if ok {
		delete(c.homes, path)
	}
	c.homesMu.Unlock()
	if !ok {
		return -1, false, nil
	}
	resp, err := c.call(ctx, home, opDeleteFile, []byte(path), ctr)
	if err != nil {
		// The daemon may still hold the file; restore the claim so ground
		// truth stays consistent with daemon state (a racing create of the
		// same path has priority and keeps its new home).
		c.homesMu.Lock()
		if _, reclaimed := c.homes[path]; !reclaimed {
			c.homes[path] = home
		}
		c.homesMu.Unlock()
		return home, true, err
	}
	_, rebuilt, err := decodeDeleteResp(resp)
	if err != nil {
		return home, true, err
	}
	if rebuilt {
		if err := c.shipBatch(ctx, c.ships.Note(home)); err != nil {
			return home, true, err
		}
	}
	return home, true, nil
}

// Apply dispatches one trace record against the prototype: mutations create
// or delete files over RPC, reads perform lookups. Entry points and home
// placements are drawn from the cluster's internal RNG.
func (c *Cluster) Apply(ctx context.Context, rec trace.Record) (LookupResult, error) {
	return c.applyRecord(ctx, lockedRand{c}, rec)
}

// ApplyWith is Apply with a caller-supplied RNG: parallel replay workers
// give each goroutine its own seeded RNG so record dispatch shares no
// mutable randomness, and a single-worker run is bit-for-bit the serial
// engine driven by that RNG.
func (c *Cluster) ApplyWith(ctx context.Context, rng *rand.Rand, rec trace.Record) (LookupResult, error) {
	return c.applyRecord(ctx, rng, rec)
}

func (c *Cluster) applyRecord(ctx context.Context, r intner, rec trace.Record) (LookupResult, error) {
	switch rec.Op {
	case trace.OpCreate:
		// One draw either way: it becomes the home of a fresh path, or the
		// entry point when creating an existing path degenerates to an
		// open. The homes-map claim is the atomic linearization point, so
		// two workers racing on the same path cannot both home it.
		ids := c.snapshotIDs()
		id := ids[r.Intn(len(ids))]
		c.homesMu.Lock()
		if _, exists := c.homes[rec.Path]; exists {
			c.homesMu.Unlock()
			return c.LookupVia(ctx, rec.Path, id)
		}
		c.homes[rec.Path] = id
		c.homesMu.Unlock()
		start := time.Now()
		crossed, err := c.createAt(ctx, id, rec.Path, nil)
		if err != nil {
			// The daemon never homed the file; withdraw the claim so
			// ground truth does not drift from daemon state.
			c.homesMu.Lock()
			delete(c.homes, rec.Path)
			c.homesMu.Unlock()
			return LookupResult{}, fmt.Errorf("proto: create %q at MDS %d: %w", rec.Path, id, err)
		}
		if crossed {
			// The file is homed whatever the ship fans out to; see Create.
			if err := c.shipBatch(ctx, c.ships.Note(id)); err != nil {
				return LookupResult{}, fmt.Errorf("proto: create %q at MDS %d: %w", rec.Path, id, err)
			}
		}
		return LookupResult{Home: id, Found: true, Level: 0, Latency: time.Since(start)}, nil
	case trace.OpDelete:
		start := time.Now()
		home, existed, err := c.deleteInner(ctx, rec.Path, nil)
		if err != nil {
			return LookupResult{}, fmt.Errorf("proto: delete %q: %w", rec.Path, err)
		}
		return LookupResult{Home: home, Found: existed, Level: 0, Latency: time.Since(start)}, nil
	default:
		ids := c.snapshotIDs()
		return c.LookupVia(ctx, rec.Path, ids[r.Intn(len(ids))])
	}
}

// Flush drains the coalescing ship queue: every daemon whose filter crossed
// the update threshold since the last drain ships its replicas now. A
// no-op with the default ShipBatch of 1.
func (c *Cluster) Flush(ctx context.Context) error {
	return c.shipBatch(ctx, c.ships.Drain())
}

// PendingShips returns how many origins have crossed the ship threshold but
// not yet drained.
func (c *Cluster) PendingShips() int { return c.ships.PendingCount() }

// shipBatch ships every origin in the batch (nil is a no-op), in the
// ascending order the queue hands back — the same order core drains in.
func (c *Cluster) shipBatch(ctx context.Context, origins []int) error {
	for _, origin := range origins {
		if err := c.shipOrigin(ctx, origin); err != nil {
			return err
		}
	}
	return nil
}

// shipOrigin fetches origin's current filter snapshot over RPC (the daemon
// records it as last-shipped, resetting its XOR-delta drift) and installs
// it at the one replica holder in every other group (G-HBA) or at every
// other daemon (HBA). Ships of the same origin serialize on a striped lock
// so a racing pair cannot install an older snapshot over a newer one while
// the origin's drift tracking already counts against the newer. Unknown
// origins (retired between enqueue and drain) are ignored.
func (c *Cluster) shipOrigin(ctx context.Context, origin int) error {
	stripe := &c.shipStripes[uint(origin)%uint(len(c.shipStripes))]
	stripe.Lock()
	defer stripe.Unlock()
	// Snapshot the install targets under the read lock; the RPCs run
	// without it, like every other coordinator fan-out.
	c.mu.RLock()
	if _, ok := c.servers[origin]; !ok {
		c.mu.RUnlock()
		return nil
	}
	var targets []int
	switch c.opts.Mode {
	case ModeHBA:
		for _, id := range c.ids {
			if id != origin {
				targets = append(targets, id)
			}
		}
	case ModeGHBA:
		ownGroup := c.groupIdx[origin]
		gis := make([]int, 0, len(c.groups))
		for gi := range c.groups {
			if gi != ownGroup {
				gis = append(gis, gi)
			}
		}
		sort.Ints(gis)
		for _, gi := range gis {
			if holder, ok := c.holders[gi][origin]; ok {
				targets = append(targets, holder)
			}
		}
	}
	c.mu.RUnlock()
	snap, err := c.call(ctx, origin, opShipFilter, nil, nil)
	if err != nil {
		return fmt.Errorf("proto: fetching filter of MDS %d: %w", origin, err)
	}
	payload := encodeOriginPayload(origin, snap)
	for _, target := range targets {
		if _, err := c.call(ctx, target, opInstallReplica, payload, nil); err != nil {
			return fmt.Errorf("proto: shipping filter of MDS %d to %d: %w", origin, target, err)
		}
		c.replicaShips.Add(1)
	}
	return nil
}
