package proto

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"

	"ghba/internal/mds"
)

func testOptions(n, m int, mode Mode) Options {
	return Options{
		N:    n,
		M:    m,
		Mode: mode,
		Node: mds.Config{
			ExpectedFiles:  2_000,
			BitsPerFile:    16,
			LRUCapacity:    256,
			LRUBitsPerFile: 16,
		},
		Seed: 1,
	}
}

func startPopulated(t *testing.T, n, m int, mode Mode, files int) *Cluster {
	t.Helper()
	c, err := Start(testOptions(n, m, mode))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	paths := make([]string, files)
	for i := range paths {
		paths[i] = "/p/f" + strconv.Itoa(i)
	}
	c.Populate(paths)
	return c
}

func TestStartValidation(t *testing.T) {
	if _, err := Start(Options{N: 0, M: 3, Mode: ModeGHBA}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := Start(Options{N: 3, M: 0, Mode: ModeGHBA}); err == nil {
		t.Error("M=0 accepted in G-HBA mode")
	}
	if _, err := Start(Options{N: 3, Mode: Mode(9)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestModeString(t *testing.T) {
	if ModeGHBA.String() != "G-HBA" || ModeHBA.String() != "HBA" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode empty string")
	}
}

func TestGHBALookupOverRealSockets(t *testing.T) {
	c := startPopulated(t, 6, 3, ModeGHBA, 200)
	for i := 0; i < 100; i++ {
		path := "/p/f" + strconv.Itoa(i)
		res, err := c.Lookup(context.Background(), path)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Home != c.HomeOf(path) {
			t.Fatalf("lookup %s = %+v (truth %d)", path, res, c.HomeOf(path))
		}
		if res.Latency <= 0 || res.Messages < 1 {
			t.Fatalf("implausible measurement: %+v", res)
		}
	}
}

func TestHBALookupOverRealSockets(t *testing.T) {
	c := startPopulated(t, 6, 0, ModeHBA, 200)
	for i := 0; i < 100; i++ {
		path := "/p/f" + strconv.Itoa(i)
		res, err := c.Lookup(context.Background(), path)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Home != c.HomeOf(path) {
			t.Fatalf("lookup %s = %+v", path, res)
		}
	}
}

func TestLookupMissingFile(t *testing.T) {
	for _, mode := range []Mode{ModeGHBA, ModeHBA} {
		c := startPopulated(t, 4, 2, mode, 50)
		res, err := c.Lookup(context.Background(), "/ghost")
		if err != nil {
			t.Fatal(err)
		}
		if res.Found || res.Level != 4 {
			t.Errorf("%v: ghost = %+v", mode, res)
		}
	}
}

func TestL1LearningAfterBatchFlush(t *testing.T) {
	c := startPopulated(t, 6, 3, ModeGHBA, 200)
	const hot = "/p/f7"
	// Drive enough confirmed lookups to flush the observation batch; the
	// hot path is among them, so every daemon's LRU array learns it.
	for i := 0; i < 70; i++ {
		path := hot
		if i%2 == 0 {
			path = "/p/f" + strconv.Itoa(i%200)
		}
		if _, err := c.LookupVia(context.Background(), path, i%6); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.LookupVia(context.Background(), hot, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != 1 {
		t.Errorf("hot lookup after batch flush served at level %d, want 1", res.Level)
	}
}

func TestConcurrentLookups(t *testing.T) {
	c := startPopulated(t, 6, 3, ModeGHBA, 300)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				path := "/p/f" + strconv.Itoa((w*50+i)%300)
				res, err := c.LookupVia(context.Background(), path, w)
				if err != nil {
					errs <- err
					return
				}
				if !res.Found {
					errs <- fmt.Errorf("%s not found", path)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestAddMDSMessageCounts is the heart of Fig 15: adding a node to HBA costs
// ~2N messages; to G-HBA it costs a small group-local amount plus one
// message per other group.
func TestAddMDSMessageCounts(t *testing.T) {
	const n = 12
	hba := startPopulated(t, n, 0, ModeHBA, 100)
	_, hbaMsgs, err := hba.AddMDS(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if hbaMsgs < 2*n {
		t.Errorf("HBA join = %d messages, want ≥ 2N = %d", hbaMsgs, 2*n)
	}

	ghba := startPopulated(t, n, 4, ModeGHBA, 100) // groups of 4, full → split
	_, ghbaMsgs, err := ghba.AddMDS(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ghbaMsgs >= hbaMsgs {
		t.Errorf("G-HBA join (%d msgs) not cheaper than HBA (%d msgs)", ghbaMsgs, hbaMsgs)
	}
}

func TestAddMDSJoinThenLookup(t *testing.T) {
	// 7 servers, M=4 → groups 4+3, room in the second.
	c := startPopulated(t, 7, 4, ModeGHBA, 200)
	id, msgs, err := c.AddMDS(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if msgs == 0 {
		t.Error("join cost nothing")
	}
	if c.NumMDS() != 8 {
		t.Errorf("NumMDS = %d", c.NumMDS())
	}
	// Lookups still resolve, including via the newcomer.
	for i := 0; i < 50; i++ {
		path := "/p/f" + strconv.Itoa(i*3%200)
		res, err := c.LookupVia(context.Background(), path, id)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Home != c.HomeOf(path) {
			t.Fatalf("post-join lookup %s = %+v", path, res)
		}
	}
}

func TestAddMDSSplitThenLookup(t *testing.T) {
	c := startPopulated(t, 4, 2, ModeGHBA, 150)
	if _, _, err := c.AddMDS(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i += 11 {
		path := "/p/f" + strconv.Itoa(i)
		res, err := c.Lookup(context.Background(), path)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found || res.Home != c.HomeOf(path) {
			t.Fatalf("post-split lookup %s = %+v", path, res)
		}
	}
}

// TestDiskPenaltySlowsOverloadedNodes verifies the prototype's memory-
// pressure emulation: HBA daemons holding more replicas than fit in RAM
// serve queries measurably slower than unconstrained ones.
func TestDiskPenaltySlowsOverloadedNodes(t *testing.T) {
	fast := startPopulated(t, 6, 0, ModeHBA, 100)
	slowOpts := testOptions(6, 0, ModeHBA)
	slowOpts.ResidentReplicaLimit = 1
	slowOpts.DiskPenalty = 2 * time.Millisecond
	slow, err := Start(slowOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(slow.Close)
	paths := make([]string, 100)
	for i := range paths {
		paths[i] = "/p/f" + strconv.Itoa(i)
	}
	slow.Populate(paths)

	var fastTotal, slowTotal time.Duration
	for i := 0; i < 30; i++ {
		path := "/p/f" + strconv.Itoa(i)
		rf, err := fast.Lookup(context.Background(), path)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := slow.Lookup(context.Background(), path)
		if err != nil {
			t.Fatal(err)
		}
		fastTotal += rf.Latency
		slowTotal += rs.Latency
	}
	if slowTotal < fastTotal+30*time.Millisecond {
		t.Errorf("disk penalty invisible: slow %v vs fast %v", slowTotal, fastTotal)
	}
}

func TestMessagesCounterAndReset(t *testing.T) {
	c := startPopulated(t, 4, 2, ModeGHBA, 50)
	if _, err := c.Lookup(context.Background(), "/p/f1"); err != nil {
		t.Fatal(err)
	}
	if c.Messages() == 0 {
		t.Error("no messages counted")
	}
	c.ResetMessages()
	if c.Messages() != 0 {
		t.Error("reset failed")
	}
}
