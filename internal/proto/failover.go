package proto

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"ghba/internal/mds"
	"ghba/internal/metastore"
)

// FailoverReport summarizes one daemon removal.
type FailoverReport struct {
	// ID is the removed daemon.
	ID int
	// FilesLost is how many ground-truth files were homed at the dead
	// daemon; they are scrubbed from the namespace (and recoverable via
	// RestartMDS when the cluster runs with a DataDir).
	FilesLost int
	// GroupDissolved reports the dead daemon was its group's last member,
	// so the group itself disappeared (G-HBA only).
	GroupDissolved bool
	// Messages is the number of RPCs the reconfiguration cost.
	Messages int
}

// FailMDS removes a (presumed dead) daemon from the running prototype: its
// server and connection shut down, survivors drop or re-acquire the
// replicas the failure invalidated, and the files it homed leave the
// ground-truth namespace. The heartbeat detector invokes this
// automatically on a Dead verdict; tests and operators may call it
// directly.
//
// The survivor-side RPCs are best-effort: a drop or re-install that fails
// leaves a stale or missing replica, which costs lookups a skipped hit or
// an L4 fallback — never a wrong answer, because lookups filter hits
// against live membership and every positive is store-verified. Removing a
// dead daemon must not itself be blockable by another hiccup.
//
// Unlike the simulator's departure path there is no group merge: a group
// shrunk below M/2 keeps operating (its multicast just fans out less), and
// a group whose last member died dissolves outright.
func (c *Cluster) FailMDS(ctx context.Context, id int) (FailoverReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns, ok := c.servers[id]
	if !ok {
		return FailoverReport{}, fmt.Errorf("proto: unknown MDS %d", id)
	}
	if len(c.servers) == 1 {
		return FailoverReport{}, fmt.Errorf("proto: refusing to fail MDS %d: it is the last daemon", id)
	}
	var msgs atomic.Int64
	rep := FailoverReport{ID: id}

	// Make the presumption true (Kill is idempotent on an already-dead
	// daemon) and stop routing to it before any survivor work.
	ns.Kill()
	delete(c.servers, id)
	c.conns.unregister(id)
	c.ships.Forget(id)

	switch c.opts.Mode {
	case ModeHBA:
		// Every survivor mirrors every daemon, so every survivor drops its
		// replica of the dead one.
		for _, other := range c.ids {
			if other == id {
				continue
			}
			_, _ = c.call(ctx, other, opDropReplica, encodeOriginPayload(id, nil), &msgs)
		}
	case ModeGHBA:
		c.failGHBALocked(ctx, id, &msgs, &rep)
	}
	c.rebuildIndexLocked()

	c.homesMu.Lock()
	for p, h := range c.homes {
		if h == id {
			delete(c.homes, p)
			rep.FilesLost++
		}
	}
	c.homesMu.Unlock()
	rep.Messages = int(msgs.Load())
	return rep, nil
}

// failGHBALocked repairs G-HBA replica placement around a dead member:
// the replicas it held for its group are re-fetched from their (live,
// authoritative) origins onto surviving groupmates, and the replica of the
// dead daemon held in each other group is dropped. Callers hold c.mu
// exclusively with the daemon already out of c.servers.
func (c *Cluster) failGHBALocked(ctx context.Context, id int, msgs *atomic.Int64, rep *FailoverReport) {
	gi := c.groupOfLocked(id)
	if gi >= 0 {
		members := make([]int, 0, len(c.groups[gi])-1)
		for _, m := range c.groups[gi] {
			if m != id {
				members = append(members, m)
			}
		}
		if len(members) == 0 {
			delete(c.groups, gi)
			delete(c.holders, gi)
			rep.GroupDissolved = true
		} else {
			c.groups[gi] = members
			for _, origin := range sortedKeys(c.holders[gi]) {
				if c.holders[gi][origin] != id {
					continue
				}
				// The dead daemon held origin's replica for this group;
				// re-fetch from the origin itself onto the lightest
				// survivor. On failure the group loses coverage of origin
				// (L4 still finds its files) rather than keeping a holder
				// entry that points at nobody.
				snap, err := c.call(ctx, origin, opShipFilter, nil, msgs)
				if err != nil {
					delete(c.holders[gi], origin)
					continue
				}
				target := c.lightestMember(gi)
				if _, err := c.call(ctx, target, opInstallReplica, encodeOriginPayload(origin, snap), msgs); err != nil {
					delete(c.holders[gi], origin)
					continue
				}
				c.holders[gi][origin] = target
			}
		}
	}
	gis := make([]int, 0, len(c.groups))
	for g := range c.groups {
		gis = append(gis, g)
	}
	sort.Ints(gis)
	for _, g := range gis {
		if g == gi {
			continue
		}
		holder, ok := c.holders[g][id]
		if !ok {
			continue
		}
		delete(c.holders[g], id)
		_, _ = c.call(ctx, holder, opDropReplica, encodeOriginPayload(id, nil), msgs)
	}
}

// KillMDS crashes daemon id in place: its connections drop and its WAL is
// abandoned mid-stream, but membership, groups and the home map keep
// naming it — exactly what a kill -9 looks like to the rest of the
// cluster. RPCs to it fail until RestartMDS recovers it or the failure
// detector declares it dead and fails it over.
func (c *Cluster) KillMDS(id int) error {
	c.mu.RLock()
	ns, ok := c.servers[id]
	c.mu.RUnlock()
	if !ok {
		return fmt.Errorf("proto: unknown MDS %d", id)
	}
	ns.Kill()
	return nil
}

// RestartReport summarizes one daemon recovery.
type RestartReport struct {
	// ID is the recovered daemon; Addr its new listen address.
	ID   int
	Addr string
	// Recovery reports what the WAL reconstruction found.
	Recovery mds.RecoveryInfo
	// Rejoined reports the daemon had been failed over, so it re-entered
	// membership through the join protocol rather than in place.
	Rejoined bool
	// FilesReclaimed counts recovered files re-claimed into the namespace
	// (their ground truth had been scrubbed by failover).
	FilesReclaimed int
	// FilesDropped counts recovered files deleted again because another
	// daemon homed the same path while this one was down.
	FilesDropped int
	// TailLost counts files ground truth credited to the daemon that did
	// not survive recovery — a WAL tail lost to a weak sync policy. They
	// are scrubbed from the namespace.
	TailLost int
	// Messages is the number of RPCs the recovery cost.
	Messages int
}

// RestartMDS recovers daemon id from its WAL directory and brings it back
// into the cluster. A daemon killed in place (KillMDS, or a real crash)
// restarts within its existing membership slot; one that was failed over
// rejoins through the same protocol AddMDS uses, then re-claims the files
// its log preserved. Requires Options.DataDir. The previous instance, if
// any, is killed first so the log directory is free to reopen.
func (c *Cluster) RestartMDS(ctx context.Context, id int) (RestartReport, error) {
	if c.opts.DataDir == "" {
		return RestartReport{}, fmt.Errorf("proto: RestartMDS requires Options.DataDir")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old, wasMember := c.servers[id]
	if wasMember {
		old.Kill()
	}
	rep := RestartReport{ID: id}
	ns, info, err := c.recoverNode(id)
	if err != nil {
		// In the wasMember case the dead instance stays in membership —
		// the operator can still FailMDS it.
		return rep, err
	}
	rep.Recovery = info
	rep.Addr = ns.Addr()
	c.conns.register(id, ns.Addr())

	var msgs atomic.Int64
	if wasMember {
		c.servers[id] = ns
		c.rewireLocked(ctx, id, &msgs)
	} else {
		rep.Rejoined = true
		groupsBak, holdersBak := copyGroups(c.groups), copyHolders(c.holders)
		switch c.opts.Mode {
		case ModeHBA:
			err = c.addHBA(ctx, id, &msgs)
		case ModeGHBA:
			err = c.addGHBALocked(ctx, id, &msgs)
		}
		if err != nil {
			c.groups, c.holders = groupsBak, holdersBak
			ns.Close()
			c.conns.unregister(id)
			return rep, err
		}
		c.servers[id] = ns
	}
	c.rebuildIndexLocked()

	conflicts := c.reconcileHomesLocked(id, ns, &rep)
	for _, p := range conflicts {
		// Another daemon homed the path while this one was down; the
		// recovered copy loses. The delete goes through the RPC path so it
		// is WAL-logged like any other mutation.
		_, _ = c.call(ctx, id, opDeleteFile, []byte(p), &msgs)
		rep.FilesDropped++
	}
	rep.Messages = int(msgs.Load())
	return rep, nil
}

// rewireLocked re-establishes replica placement around a daemon restarted
// in its existing membership slot: the replicas it is on record as holding
// are re-fetched from their origins (the crash emptied its replica array),
// and its own filter re-ships to its holders (their copies predate the
// crash). Best-effort, like the failover RPCs: a miss degrades lookups to
// L4, never corrupts them.
func (c *Cluster) rewireLocked(ctx context.Context, id int, msgs *atomic.Int64) {
	switch c.opts.Mode {
	case ModeHBA:
		for _, other := range c.ids {
			if other == id {
				continue
			}
			if snap, err := c.call(ctx, other, opShipFilter, nil, msgs); err == nil {
				_, _ = c.call(ctx, id, opInstallReplica, encodeOriginPayload(other, snap), msgs)
			}
		}
		snap, err := c.call(ctx, id, opShipFilter, nil, msgs)
		if err != nil {
			return
		}
		for _, other := range c.ids {
			if other != id {
				_, _ = c.call(ctx, other, opInstallReplica, encodeOriginPayload(id, snap), msgs)
			}
		}
	case ModeGHBA:
		gi := c.groupOfLocked(id)
		if gi >= 0 {
			for _, origin := range sortedKeys(c.holders[gi]) {
				if c.holders[gi][origin] != id {
					continue
				}
				if snap, err := c.call(ctx, origin, opShipFilter, nil, msgs); err == nil {
					_, _ = c.call(ctx, id, opInstallReplica, encodeOriginPayload(origin, snap), msgs)
				}
			}
		}
		snap, err := c.call(ctx, id, opShipFilter, nil, msgs)
		if err != nil {
			return
		}
		gis := make([]int, 0, len(c.groups))
		for g := range c.groups {
			gis = append(gis, g)
		}
		sort.Ints(gis)
		for _, g := range gis {
			if g == gi {
				continue
			}
			if holder, ok := c.holders[g][id]; ok {
				_, _ = c.call(ctx, holder, opInstallReplica, encodeOriginPayload(id, snap), msgs)
			}
		}
	}
}

// reconcileHomesLocked folds a recovered daemon's store back into the
// ground-truth namespace: recovered paths nobody else claimed are
// re-claimed for id, paths another daemon homed meanwhile are returned as
// conflicts (sorted, for deterministic message flow), and paths ground
// truth still credited to id that did not survive recovery are scrubbed
// as tail loss.
func (c *Cluster) reconcileHomesLocked(id int, ns *NodeServer, rep *RestartReport) []string {
	recovered := make(map[string]bool)
	ns.node.Store().Range(func(md metastore.Metadata) bool {
		recovered[md.Path] = true
		return true
	})
	var conflicts []string
	c.homesMu.Lock()
	for p := range recovered {
		h, ok := c.homes[p]
		switch {
		case !ok:
			c.homes[p] = id
			rep.FilesReclaimed++
		case h == id:
			// Consistent: the namespace never forgot this file.
		default:
			conflicts = append(conflicts, p)
		}
	}
	for p, h := range c.homes {
		if h == id && !recovered[p] {
			delete(c.homes, p)
			rep.TailLost++
		}
	}
	c.homesMu.Unlock()
	sort.Strings(conflicts)
	return conflicts
}
