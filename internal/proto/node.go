package proto

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"ghba/internal/bloom"
	"ghba/internal/mds"
	"ghba/internal/rpcnet"
	"ghba/internal/wal"
)

// NodeServer is one prototype MDS daemon: an mds.Node behind a TCP server.
// The node mutex serializes request processing, so concurrent load produces
// genuine queueing at hot servers — the effect Fig 14 measures.
type NodeServer struct {
	id  int
	srv *rpcnet.Server

	mu   sync.Mutex
	node *mds.Node

	// qbuf is the daemon's reusable hit buffer for digest queries; handle
	// holds mu for the whole request, so one buffer per daemon suffices
	// (encodeHits copies before the buffer is reused).
	qbuf []int

	// residentLimit is the number of replicas that fit in RAM; when the
	// node holds more, queries against the replica array pay diskPenalty —
	// the prototype's stand-in for the disk accesses a spilled Bloom
	// filter array incurs on real hardware.
	residentLimit int
	diskPenalty   time.Duration

	// updateThresholdBits and rebuildDeleteThreshold mirror the simulator's
	// core.Config knobs: the XOR-delta drift that marks the local filter
	// dirty for shipping, and the deletion count that triggers a rebuild.
	updateThresholdBits    uint64
	rebuildDeleteThreshold uint64

	// wal, when non-nil, makes the daemon durable: every mutating RPC
	// appends its records before applying them (write-ahead), and every
	// snapshotEvery records the log compacts into a snapshot. Guarded by mu
	// like the node itself — handle holds mu for the whole request, so the
	// append and the apply are atomic with respect to snapshots.
	wal           *wal.Log
	snapshotEvery uint64
}

// NodeServerOptions configures one daemon beyond its mds.Node state.
type NodeServerOptions struct {
	// ResidentReplicaLimit is how many replicas fit in RAM; ≤ 0 means
	// everything fits.
	ResidentReplicaLimit int
	// DiskPenalty is the emulated disk cost per query against an over-RAM
	// replica array.
	DiskPenalty time.Duration
	// UpdateThresholdBits is the XOR-delta staleness threshold an
	// opCreateFile response reports against. Zero selects the simulator's
	// default of 64 bits.
	UpdateThresholdBits uint64
	// RebuildDeleteThreshold is the deletion count that triggers a
	// local-filter rebuild inside opDeleteFile. Zero selects the
	// simulator's default of 10 000.
	RebuildDeleteThreshold uint64
	// WAL, when non-nil, is the daemon's open write-ahead log (typically
	// the one mds.Recover handed back). Mutating RPCs append to it before
	// applying; Shutdown compacts and closes it.
	WAL *wal.Log
	// SnapshotEvery is the WAL record count between snapshot compactions.
	// Zero selects 4096; negative disables automatic compaction (Shutdown
	// still snapshots). Ignored without a WAL.
	SnapshotEvery int
}

// StartNode launches a daemon for the given node on addr ("127.0.0.1:0"
// for tests).
func StartNode(node *mds.Node, addr string, opts NodeServerOptions) (*NodeServer, error) {
	if opts.UpdateThresholdBits == 0 {
		opts.UpdateThresholdBits = 64
	}
	if opts.RebuildDeleteThreshold == 0 {
		opts.RebuildDeleteThreshold = 10_000
	}
	snapEvery := uint64(0)
	if opts.WAL != nil {
		switch {
		case opts.SnapshotEvery == 0:
			snapEvery = 4096
		case opts.SnapshotEvery > 0:
			snapEvery = uint64(opts.SnapshotEvery)
		}
	}
	ns := &NodeServer{
		id:                     node.ID(),
		node:                   node,
		residentLimit:          opts.ResidentReplicaLimit,
		diskPenalty:            opts.DiskPenalty,
		updateThresholdBits:    opts.UpdateThresholdBits,
		rebuildDeleteThreshold: opts.RebuildDeleteThreshold,
		wal:                    opts.WAL,
		snapshotEvery:          snapEvery,
	}
	srv, err := rpcnet.Serve(addr, ns.handle)
	if err != nil {
		return nil, fmt.Errorf("proto: starting MDS %d: %w", node.ID(), err)
	}
	ns.srv = srv
	return ns, nil
}

// ID returns the MDS identifier.
func (ns *NodeServer) ID() int { return ns.id }

// Addr returns the daemon's listen address.
func (ns *NodeServer) Addr() string { return ns.srv.Addr() }

// Close shuts the daemon down: the server stops (in-flight handlers
// finish) and the WAL, if any, syncs and closes. No final snapshot is
// taken — recovery replays the log tail.
func (ns *NodeServer) Close() {
	ns.srv.Close()
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.wal != nil {
		_ = ns.wal.Close()
	}
}

// Kill crashes the daemon: connections drop immediately and the WAL is
// abandoned without a final sync — the on-disk state a kill -9 leaves
// behind (modulo the page cache, which an in-process crash cannot drop).
// mds.Recover is the only way back.
func (ns *NodeServer) Kill() {
	ns.srv.Close()
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.wal != nil {
		_ = ns.wal.Abandon()
	}
}

// Shutdown drains the daemon cleanly: the listener closes, in-flight
// requests finish (bounded by timeout), a final snapshot compacts the WAL,
// and the log closes. On drain timeout the WAL is left as-is — a wedged
// handler may hold the daemon mutex, and recovery replays the tail anyway.
func (ns *NodeServer) Shutdown(timeout time.Duration) error {
	if err := ns.srv.Drain(timeout); err != nil {
		return err
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.wal == nil {
		return nil
	}
	return errors.Join(ns.snapshotLocked(), ns.wal.Close())
}

// SnapshotNow forces a WAL compaction outside the usual cadence; bulk
// loads use it to make direct (unlogged) writes durable. A no-op without
// a WAL.
func (ns *NodeServer) SnapshotNow() error {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.snapshotLocked()
}

func (ns *NodeServer) snapshotLocked() error {
	if ns.wal == nil {
		return nil
	}
	state, err := ns.node.MarshalSnapshot()
	if err != nil {
		return err
	}
	return ns.wal.Snapshot(state)
}

// logMutation appends records ahead of applying them (write-ahead: a
// mutation whose append fails is refused wholesale). Called with mu held.
func (ns *NodeServer) logMutation(recs ...wal.Record) error {
	if ns.wal == nil {
		return nil
	}
	return ns.wal.Append(recs...)
}

// maybeCompactLocked snapshots once the record count crosses the cadence.
// Called with mu held, after the mutation applied, so the snapshot always
// includes the records it retires.
func (ns *NodeServer) maybeCompactLocked() error {
	if ns.wal == nil || ns.snapshotEvery == 0 || ns.wal.RecordsSinceSnapshot() < ns.snapshotEvery {
		return nil
	}
	return ns.snapshotLocked()
}

// ReplicaCount returns the replicas currently held (for planning joins).
func (ns *NodeServer) ReplicaCount() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.node.ReplicaCount()
}

// AddFileDirect homes a file without the RPC path; used for bulk population
// before measurement starts.
func (ns *NodeServer) AddFileDirect(path string) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.node.AddFile(path)
}

// InstallReplicaDirect installs a replica without RPC, for initial seeding.
func (ns *NodeServer) InstallReplicaDirect(origin int, f *bloom.Filter) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	ns.node.InstallReplica(origin, f)
}

// ShipDirect snapshots the node's local filter, for initial seeding.
func (ns *NodeServer) ShipDirect() *bloom.Filter {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.node.Ship()
}

// walRecords builds one WAL record per path with a shared op — the batch
// RPCs append their whole vector in a single (atomic) WAL write.
func walRecords(op uint8, paths []string) []wal.Record {
	recs := make([]wal.Record, len(paths))
	for i, p := range paths {
		recs[i] = wal.Record{Op: op, Path: p}
	}
	return recs
}

// spilledSleep emulates disk accesses for the over-RAM replica fraction.
// Called with the mutex held so the penalty occupies the server, queueing
// concurrent requests behind it exactly as a blocked disk read would.
func (ns *NodeServer) spilledSleep() {
	if ns.residentLimit <= 0 || ns.diskPenalty <= 0 {
		return
	}
	total := ns.node.ReplicaCount()
	if total <= ns.residentLimit {
		return
	}
	frac := float64(total-ns.residentLimit) / float64(total)
	time.Sleep(time.Duration(frac * float64(ns.diskPenalty)))
}

// handle dispatches one RPC.
func (ns *NodeServer) handle(msgType uint8, payload []byte) ([]byte, error) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	switch msgType {
	case opQueryEntry:
		// Hash the path once for the whole request: L1 generations and
		// every L2 replica replay the digest's probe positions.
		d := bloom.NewDigest(payload)
		l1 := ns.node.QueryL1Digest(&d, ns.qbuf)
		out := encodeHits(l1.Hits)
		ns.qbuf = l1.Hits
		ns.spilledSleep()
		l2 := ns.node.QueryL2Digest(&d, ns.qbuf)
		ns.qbuf = l2.Hits
		return append(out, encodeHits(l2.Hits)...), nil

	case opQueryMember:
		d := bloom.NewDigest(payload)
		ns.spilledSleep()
		l2 := ns.node.QueryL2Digest(&d, ns.qbuf)
		ns.qbuf = l2.Hits
		return encodeHits(l2.Hits), nil

	case opVerify:
		return boolByte(ns.node.HasFile(string(payload))), nil

	case opHasLocal:
		d := bloom.NewDigest(payload)
		if !ns.node.LocalPositiveDigest(&d) {
			return boolByte(false), nil
		}
		// Positive filter answer → authoritative store check ("disk").
		return boolByte(ns.node.HasFile(string(payload))), nil

	case opAddFile:
		if err := ns.logMutation(wal.Record{Op: wal.OpCreate, Path: string(payload)}); err != nil {
			return nil, err
		}
		ns.node.AddFile(string(payload))
		return nil, ns.maybeCompactLocked()

	case opCreateFile:
		// The mutation and the threshold check happen in one request, so
		// the coordinator learns whether to feed the ship queue without a
		// second round trip — the networked twin of core.noteMutationLocked.
		if err := ns.logMutation(wal.Record{Op: wal.OpCreate, Path: string(payload)}); err != nil {
			return nil, err
		}
		ns.node.AddFile(string(payload))
		if err := ns.maybeCompactLocked(); err != nil {
			return nil, err
		}
		return boolByte(ns.node.NeedsShip(ns.updateThresholdBits)), nil

	case opDeleteFile:
		// Logged before the existence answer is known: replaying a delete
		// of an absent path is a no-op, so the record is harmless either way.
		if err := ns.logMutation(wal.Record{Op: wal.OpDelete, Path: string(payload)}); err != nil {
			return nil, err
		}
		existed := ns.node.DeleteFile(string(payload))
		rebuilt := false
		if existed {
			rebuilt = ns.node.RebuildIfStale(ns.rebuildDeleteThreshold)
		}
		resp := []byte{0, 0}
		if existed {
			resp[0] = 1
		}
		if rebuilt {
			resp[1] = 1
		}
		return resp, ns.maybeCompactLocked()

	case opInstallReplica:
		origin, body, err := decodeOriginPayload(payload)
		if err != nil {
			return nil, err
		}
		var f bloom.Filter
		if err := f.UnmarshalBinary(body); err != nil {
			return nil, fmt.Errorf("proto: bad replica payload: %w", err)
		}
		ns.node.InstallReplica(origin, &f)
		return nil, nil

	case opDropReplica:
		origin, _, err := decodeOriginPayload(payload)
		if err != nil {
			return nil, err
		}
		f := ns.node.DropReplica(origin)
		if f == nil {
			return nil, fmt.Errorf("proto: MDS %d holds no replica of %d", ns.id, origin)
		}
		return f.MarshalBinary()

	case opShipFilter:
		return ns.node.Ship().MarshalBinary()

	case opObserve:
		home, body, err := decodeOriginPayload(payload)
		if err != nil {
			return nil, err
		}
		d := bloom.NewDigest(body)
		ns.node.ObserveHitDigest(&d, home)
		return nil, nil

	case opObserveBatch:
		obs, err := decodeObservations(payload)
		if err != nil {
			return nil, err
		}
		for _, o := range obs {
			d := bloom.NewDigestString(o.path)
			ns.node.ObserveHitDigest(&d, o.home)
		}
		return nil, nil

	case opPing:
		return nil, nil

	case opLookupBatch:
		// The entry leg of a batched lookup: one digest per path, L1 and L2
		// hits for the whole vector in one response — the per-frame costs
		// (syscall, header, lock) amortize across the batch.
		paths, err := decodePaths(payload)
		if err != nil {
			return nil, err
		}
		var out []byte
		for _, p := range paths {
			d := bloom.NewDigestString(p)
			l1 := ns.node.QueryL1Digest(&d, ns.qbuf)
			out = append(out, encodeHits(l1.Hits)...)
			ns.qbuf = l1.Hits
			ns.spilledSleep()
			l2 := ns.node.QueryL2Digest(&d, ns.qbuf)
			out = append(out, encodeHits(l2.Hits)...)
			ns.qbuf = l2.Hits
		}
		return out, nil

	case opQueryMemberBatch:
		paths, err := decodePaths(payload)
		if err != nil {
			return nil, err
		}
		var out []byte
		for _, p := range paths {
			d := bloom.NewDigestString(p)
			ns.spilledSleep()
			l2 := ns.node.QueryL2Digest(&d, ns.qbuf)
			out = append(out, encodeHits(l2.Hits)...)
			ns.qbuf = l2.Hits
		}
		return out, nil

	case opVerifyBatch:
		paths, err := decodePaths(payload)
		if err != nil {
			return nil, err
		}
		answers := make([]bool, len(paths))
		for i, p := range paths {
			answers[i] = ns.node.HasFile(p)
		}
		return encodeBools(answers), nil

	case opHasLocalBatch:
		paths, err := decodePaths(payload)
		if err != nil {
			return nil, err
		}
		answers := make([]bool, len(paths))
		for i, p := range paths {
			d := bloom.NewDigestString(p)
			if ns.node.LocalPositiveDigest(&d) {
				answers[i] = ns.node.HasFile(p)
			}
		}
		return encodeBools(answers), nil

	case opCreateBatch:
		paths, err := decodePaths(payload)
		if err != nil {
			return nil, err
		}
		if err := ns.logMutation(walRecords(wal.OpCreate, paths)...); err != nil {
			return nil, err
		}
		for _, p := range paths {
			ns.node.AddFile(p)
		}
		if err := ns.maybeCompactLocked(); err != nil {
			return nil, err
		}
		// One threshold answer for the whole batch: the coordinator's ship
		// queue coalesces by origin anyway, so per-path flags would collapse
		// to the same single Note.
		return boolByte(ns.node.NeedsShip(ns.updateThresholdBits)), nil

	case opDeleteBatch:
		paths, err := decodePaths(payload)
		if err != nil {
			return nil, err
		}
		if err := ns.logMutation(walRecords(wal.OpDelete, paths)...); err != nil {
			return nil, err
		}
		resp := make([]byte, len(paths)+1)
		rebuilt := false
		for i, p := range paths {
			if ns.node.DeleteFile(p) {
				resp[i] = 1
				if ns.node.RebuildIfStale(ns.rebuildDeleteThreshold) {
					rebuilt = true
				}
			}
		}
		if rebuilt {
			resp[len(paths)] = 1
		}
		return resp, ns.maybeCompactLocked()

	case opHeartbeat:
		var walRecs uint64
		if ns.wal != nil {
			walRecs = ns.wal.RecordsSinceSnapshot()
		}
		return encodeHeartbeatResp(HeartbeatInfo{
			ID:         ns.id,
			Files:      uint64(ns.node.FileCount()),
			WALRecords: walRecs,
		}), nil

	default:
		return nil, fmt.Errorf("proto: unknown message type %d", msgType)
	}
}
