package proto

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Health is the failure detector's verdict on one daemon.
type Health int

// Detector verdicts, in escalation order.
const (
	// HealthAlive: the most recent probe succeeded.
	HealthAlive Health = iota
	// HealthSuspect: SuspectAfter consecutive probes failed; the daemon may
	// be slow, partitioned or restarting.
	HealthSuspect
	// HealthDead: DeadAfter consecutive probes failed; failover has been
	// invoked and the daemon removed from membership.
	HealthDead
)

// String names the verdict.
func (h Health) String() string {
	switch h {
	case HealthAlive:
		return "alive"
	case HealthSuspect:
		return "suspect"
	case HealthDead:
		return "dead"
	default:
		return "unknown"
	}
}

// DetectorOptions tunes the heartbeat failure detector.
type DetectorOptions struct {
	// Interval is the probe period. Zero selects 200ms.
	Interval time.Duration
	// Timeout is the per-probe deadline. Zero selects Interval.
	Timeout time.Duration
	// SuspectAfter is the consecutive-miss count that marks a daemon
	// Suspect. Zero selects 2.
	SuspectAfter int
	// DeadAfter is the consecutive-miss count that declares a daemon Dead
	// and triggers failover. Zero selects 5. Must exceed SuspectAfter for
	// the Suspect state to ever be observable.
	DeadAfter int
	// OnTransition, when non-nil, is called (off-lock, from the probe
	// goroutine) after each health transition.
	OnTransition func(id int, from, to Health)
}

func (o DetectorOptions) withDefaults() DetectorOptions {
	if o.Interval <= 0 {
		o.Interval = 200 * time.Millisecond
	}
	if o.Timeout <= 0 {
		o.Timeout = o.Interval
	}
	if o.SuspectAfter <= 0 {
		o.SuspectAfter = 2
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 5
	}
	return o
}

// Detector is a heartbeat-driven failure detector: a probe loop sends
// opHeartbeat to every member on a cadence, escalates daemons through
// Alive → Suspect → Dead as consecutive misses accumulate, and invokes the
// cluster's failover path automatically on Dead — the prototype equivalent
// of the paper's lightweight membership maintenance, where reconfiguration
// is triggered by observed failure rather than operator command.
type Detector struct {
	c    *Cluster
	opts DetectorOptions

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}

	mu     sync.Mutex
	misses map[int]int
	state  map[int]Health

	failovers atomic.Uint64
}

// StartDetector launches the failure detector. Callers own the returned
// detector and must Stop it before closing the cluster.
func (c *Cluster) StartDetector(opts DetectorOptions) *Detector {
	d := &Detector{
		c:      c,
		opts:   opts.withDefaults(),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		misses: make(map[int]int),
		state:  make(map[int]Health),
	}
	go d.run()
	return d
}

// Stop halts the probe loop and waits for it to exit. Idempotent.
func (d *Detector) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.done
}

// State returns the current verdict on one daemon. Daemons never probed
// (or never missed) are Alive; a failed-over daemon stays Dead even after
// its removal from membership.
func (d *Detector) State(id int) Health {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state[id]
}

// Failovers returns how many automatic failovers the detector has run.
func (d *Detector) Failovers() uint64 { return d.failovers.Load() }

// run is the probe loop. It deliberately lives outside StartDetector: the
// loop owns its own probe deadlines (it answers to Stop, not to a caller's
// context), so it builds them from context.Background — legal here because
// run takes no context of its own.
func (d *Detector) run() {
	defer close(d.done)
	ticker := time.NewTicker(d.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
			d.sweep()
		}
	}
}

// transition records one health change for off-lock callback delivery.
type transition struct {
	id       int
	from, to Health
}

// sweep probes every current member in parallel, folds the results into
// the miss counters in deterministic (sorted-ID) order, and fails over
// whatever crossed the Dead threshold.
func (d *Detector) sweep() {
	ids := d.c.snapshotIDs()
	results := make([]error, len(ids))
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(i, id int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), d.opts.Timeout)
			defer cancel()
			_, err := d.c.Heartbeat(ctx, id)
			results[i] = err
		}(i, id)
	}
	wg.Wait()

	var dead []int
	var transitions []transition
	d.mu.Lock()
	for i, id := range ids {
		if results[i] == nil {
			delete(d.misses, id)
			if prev := d.state[id]; prev != HealthAlive {
				d.state[id] = HealthAlive
				transitions = append(transitions, transition{id, prev, HealthAlive})
			}
			continue
		}
		d.misses[id]++
		prev := d.state[id]
		next := prev
		switch {
		case d.misses[id] >= d.opts.DeadAfter:
			next = HealthDead
		case d.misses[id] >= d.opts.SuspectAfter:
			next = HealthSuspect
		}
		if next != prev {
			d.state[id] = next
			transitions = append(transitions, transition{id, prev, next})
		}
		// Dead members are retried every sweep (not just on the
		// transition): if failover is refused — e.g. it would remove the
		// last daemon — a later sweep gets another chance.
		if next == HealthDead {
			dead = append(dead, id)
		}
	}
	d.mu.Unlock()

	for _, tr := range transitions {
		if d.opts.OnTransition != nil {
			d.opts.OnTransition(tr.id, tr.from, tr.to)
		}
	}
	for _, id := range dead {
		if _, err := d.c.FailMDS(context.Background(), id); err == nil {
			d.failovers.Add(1)
			// The daemon left membership; wipe its miss slate so a later
			// rejoin (RestartMDS) is judged on fresh probes, not on the
			// count its corpse accumulated.
			d.mu.Lock()
			delete(d.misses, id)
			d.mu.Unlock()
		}
	}
}
