package analysis

import (
	"math"
	"testing"
	"time"
)

func sampleParams() LatencyParams {
	return LatencyParams{
		PLRU:   0.7,
		PL2:    0.8,
		DLRU:   100 * time.Microsecond,
		DL2:    300 * time.Microsecond,
		DGroup: 2 * time.Millisecond,
		DNet:   5 * time.Millisecond,
	}
}

func TestValidate(t *testing.T) {
	if err := sampleParams().Validate(); err != nil {
		t.Error(err)
	}
	bad := sampleParams()
	bad.PLRU = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("PLRU 1.5 accepted")
	}
	bad = sampleParams()
	bad.PL2 = -0.1
	if err := bad.Validate(); err == nil {
		t.Error("PL2 -0.1 accepted")
	}
}

// TestLatencyEq4HandComputed pins Equation 4 against a hand-computed value.
func TestLatencyEq4HandComputed(t *testing.T) {
	p := sampleParams()
	const m = 4
	missL1 := 1 - p.PLRU           // 0.3
	missL2 := 1 - p.PL2/float64(m) // 0.8
	want := float64(p.DLRU) +
		missL1*float64(p.DL2) +
		missL1*missL2*float64(p.DGroup) +
		missL1*missL2*float64(m)*float64(p.DNet)
	got := Latency(p, m)
	if math.Abs(float64(got)-want) > 1 {
		t.Errorf("Latency = %v, want %v", got, time.Duration(want))
	}
}

func TestLatencyClampsM(t *testing.T) {
	p := sampleParams()
	if Latency(p, 0) != Latency(p, 1) {
		t.Error("m=0 not clamped to 1")
	}
}

func TestLatencyGrowsWithM(t *testing.T) {
	// With fixed rates, larger groups mean a larger M·Dnet term.
	p := sampleParams()
	prev := Latency(p, 1)
	for m := 2; m <= 15; m++ {
		cur := Latency(p, m)
		if cur < prev {
			t.Fatalf("Latency(M=%d)=%v < Latency(M=%d)=%v", m, cur, m-1, prev)
		}
		prev = cur
	}
}

func TestSpaceOverheadEq3(t *testing.T) {
	if got := SpaceOverhead(100, 9); math.Abs(got-91.0/9.0) > 1e-12 {
		t.Errorf("SpaceOverhead(100,9) = %f", got)
	}
	if got := SpaceOverhead(30, 6); got != 4 {
		t.Errorf("SpaceOverhead(30,6) = %f, want 4", got)
	}
	// Degenerate inputs floor rather than explode or go negative.
	if got := SpaceOverhead(10, 10); got != 0.5 {
		t.Errorf("SpaceOverhead(10,10) = %f, want floor 0.5", got)
	}
	if got := SpaceOverhead(10, 0); got != 9 {
		t.Errorf("SpaceOverhead(10,0) = %f, want clamp to m=1", got)
	}
}

func TestNormalizedThroughputEq2(t *testing.T) {
	// Γ = 1/(latency_ms · space).
	got := NormalizedThroughput(2*time.Millisecond, 30, 6)
	want := 1.0 / (2.0 * 4.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Γ = %f, want %f", got, want)
	}
	if NormalizedThroughput(0, 30, 6) != 0 {
		t.Error("zero latency should yield zero Γ (guard)")
	}
}

// TestGammaInteriorOptimum composes Equations 2–4 with memory-pressure-aware
// level latencies — the way Section 4.1 derives Fig 6 from simulation
// measurements. At small M each MDS stores θ = (N−M)/M replicas; the
// fraction that exceeds the RAM budget pays disk latency at L2, while large
// M inflates the multicast terms. The benefit function must then peak at an
// interior M, not at either extreme.
func TestGammaInteriorOptimum(t *testing.T) {
	const (
		n           = 100
		memProbe    = time.Microsecond
		diskRead    = 5 * time.Millisecond
		rtt         = 200 * time.Microsecond
		residentCap = 12.0 // replicas that fit in RAM per MDS
	)
	paramsFor := func(m int) LatencyParams {
		theta := float64(n-m) / float64(m)
		spilled := theta - residentCap
		if spilled < 0 {
			spilled = 0
		}
		dl2 := time.Duration(theta)*memProbe + time.Duration(spilled*0.5*float64(diskRead))
		// Group multicasts consume probe capacity on every member, so the
		// per-unit network term congests as M approaches the service
		// saturation point (M/M/1-style inflation).
		congestion := 1 / (1 - math.Min(0.95, float64(m)/25.0))
		return LatencyParams{
			PLRU:   0.7,
			PL2:    0.8,
			DLRU:   50 * memProbe,
			DL2:    dl2,
			DGroup: time.Duration(float64(rtt) * math.Ceil(math.Log2(float64(m)+1))),
			DNet:   time.Duration(float64(rtt) * congestion),
		}
	}
	gamma := func(m int) float64 { return GammaAnalytic(paramsFor(m), n, m) }
	best := OptimalM(20, gamma)
	if best <= 2 || best >= 18 {
		t.Errorf("optimal M = %d, want an interior optimum", best)
	}
	// The extremes must lose to the optimum.
	if gamma(1) >= gamma(best) || gamma(20) >= gamma(best) {
		t.Errorf("Γ(1)=%f Γ(best=%d)=%f Γ(20)=%f: not unimodal around interior",
			gamma(1), best, gamma(best), gamma(20))
	}
}

func TestOptimalM(t *testing.T) {
	// A synthetic unimodal gamma peaking at 7.
	gamma := func(m int) float64 { return -math.Abs(float64(m) - 7) }
	if got := OptimalM(15, gamma); got != 7 {
		t.Errorf("OptimalM = %d, want 7", got)
	}
	// Ties break toward smaller M.
	flat := func(int) float64 { return 1 }
	if got := OptimalM(15, flat); got != 1 {
		t.Errorf("OptimalM on flat = %d, want 1", got)
	}
}

// TestTable5MatchesPaper checks the analytic Table 5 against the paper's
// published G-HBA column using the per-N optimal group sizes.
func TestTable5MatchesPaper(t *testing.T) {
	cases := []struct {
		n, m int
		want float64
	}{
		{20, 5, 0.2002},
		{40, 6, 0.1670},
		{60, 7, 0.1434},
		{80, 8, 0.1258},
		{100, 9, 0.1121},
	}
	for _, c := range cases {
		row := Table5(c.n, c.m, 0.004)
		if row.BFA8 != 1 || row.BFA16 != 2 {
			t.Errorf("N=%d: BFA columns %f/%f", c.n, row.BFA8, row.BFA16)
		}
		if row.HBA <= 1 || row.HBA > 1.01 {
			t.Errorf("N=%d: HBA = %f, want slightly above 1", c.n, row.HBA)
		}
		if math.Abs(row.GHBA-c.want) > 0.02 {
			t.Errorf("N=%d: G-HBA = %.4f, paper %.4f", c.n, row.GHBA, c.want)
		}
	}
}

func TestPaperOptimalM(t *testing.T) {
	cases := map[int]int{10: 3, 30: 6, 60: 7, 80: 8, 100: 9, 150: 11, 200: 13}
	for n, want := range cases {
		if got := PaperOptimalM(n); got != want {
			t.Errorf("PaperOptimalM(%d) = %d, want %d", n, got, want)
		}
	}
}
