// Package analysis implements the paper's analytic model: the storage
// overhead of Equation 3, the multi-level latency of Equation 4, the
// normalized-throughput benefit function Γ of Equation 2 used to pick the
// optimal group size M (Section 3.3, Figs 6–7), and helpers tying the model
// to measured simulator rates.
package analysis

import (
	"fmt"
	"time"
)

// LatencyParams carries the measured inputs of Equation 4 (Table 2 of the
// paper): unique-hit rates and per-level latencies.
type LatencyParams struct {
	// PLRU is the unique-hit rate in the LRU (L1) Bloom filter arrays.
	PLRU float64
	// PL2 is the unique-hit rate in the second-level (segment) arrays,
	// aggregated at group scope as the formula expects.
	PL2 float64
	// DLRU is the latency of queries resolved in the LRU arrays.
	DLRU time.Duration
	// DL2 is the latency of queries resolved in the second-level arrays.
	DL2 time.Duration
	// DGroup is the latency of one group multicast resolution.
	DGroup time.Duration
	// DNet is the per-unit latency of the system-wide multicast term.
	DNet time.Duration
}

// Validate reports whether the rates are probabilities.
func (p LatencyParams) Validate() error {
	if p.PLRU < 0 || p.PLRU > 1 || p.PL2 < 0 || p.PL2 > 1 {
		return fmt.Errorf("analysis: rates out of [0,1]: PLRU=%f PL2=%f", p.PLRU, p.PL2)
	}
	return nil
}

// Latency evaluates Equation 4 verbatim:
//
//	U(laten.) = D_LRU + (1−P_LRU)·D_L2
//	          + (1−P_LRU)(1−P_L2/M)·D_group
//	          + (1−P_LRU)(1−P_L2/M)·M·D_net
//
// for group size M ≥ 1.
func Latency(p LatencyParams, m int) time.Duration {
	if m < 1 {
		m = 1
	}
	missL1 := 1 - p.PLRU
	missL2 := 1 - p.PL2/float64(m)
	if missL2 < 0 {
		missL2 = 0
	}
	lat := float64(p.DLRU)
	lat += missL1 * float64(p.DL2)
	lat += missL1 * missL2 * float64(p.DGroup)
	lat += missL1 * missL2 * float64(m) * float64(p.DNet)
	return time.Duration(lat)
}

// SpaceOverhead evaluates Equation 3: the replicas stored per MDS,
// (N−M)/M. Degenerate inputs (M ≥ N or M ≤ 0) return a small positive floor
// so the benefit function stays finite.
func SpaceOverhead(n, m int) float64 {
	if m <= 0 {
		m = 1
	}
	over := float64(n-m) / float64(m)
	if over < 0.5 {
		// Below one replica per server the array cost is dominated by the
		// server's own filter; floor the term so Γ comparisons stay sane.
		over = 0.5
	}
	return over
}

// NormalizedThroughput evaluates Equation 2 with latency expressed in
// milliseconds: Γ = 1 / (U(laten.) · U(space)). Larger is better.
func NormalizedThroughput(latency time.Duration, n, m int) float64 {
	ms := float64(latency) / float64(time.Millisecond)
	if ms <= 0 {
		return 0
	}
	return 1 / (ms * SpaceOverhead(n, m))
}

// GammaAnalytic composes Equations 2–4 from analytic inputs.
func GammaAnalytic(p LatencyParams, n, m int) float64 {
	return NormalizedThroughput(Latency(p, m), n, m)
}

// OptimalM returns the group size in [1, maxM] maximizing gamma(m). Ties
// break toward the smaller M (cheaper reconfiguration).
func OptimalM(maxM int, gamma func(m int) float64) int {
	best, bestVal := 1, gamma(1)
	for m := 2; m <= maxM; m++ {
		if v := gamma(m); v > bestVal {
			best, bestVal = m, v
		}
	}
	return best
}

// Table5Row computes the relative per-MDS memory overhead of the four
// schemes of Table 5, normalized to BFA with bit/file ratio 8. n is the MDS
// count, m the G-HBA group size, lruRelative the LRU array's size as a
// fraction of one 8-bit filter (the paper's HBA column shows 1.0002 at
// N=20, i.e. the LRU adds 0.02% of the array).
type Table5Row struct {
	N     int
	BFA8  float64
	BFA16 float64
	HBA   float64
	GHBA  float64
}

// Table5 computes one row: BFA8 ≡ 1 by definition; BFA16 doubles the ratio;
// HBA adds the LRU array on top of BFA8; G-HBA stores (N−M)/M replicas plus
// its own filter plus the (tiny) LRU and IDBFA structures.
func Table5(n, m int, lruFilters float64) Table5Row {
	perMDSFilters := float64(n) // BFA8: one 8-bit filter per server
	ghbaFilters := SpaceOverhead(n, m) + 1 + lruFilters
	return Table5Row{
		N:     n,
		BFA8:  1,
		BFA16: 2,
		HBA:   (perMDSFilters + lruFilters) / perMDSFilters,
		GHBA:  ghbaFilters / perMDSFilters,
	}
}

// PaperOptimalM returns the optimal group size the paper reports for a
// given system size (Fig 7: roughly √N across the studied workloads, e.g.
// M=5–6 at N=30 and M=9 at N=100, M=7 at N=60 in the prototype).
func PaperOptimalM(n int) int {
	switch {
	case n <= 10:
		return 3
	case n <= 30:
		return 6
	case n <= 60:
		return 7
	case n <= 80:
		return 8
	case n <= 100:
		return 9
	case n <= 150:
		return 11
	default:
		return 13
	}
}
