// Package bloom implements the Bloom filter machinery that underpins G-HBA:
// standard bit-vector filters, counting filters that support deletion, the
// set-algebraic operations of Section 3.4 of the paper (union, intersection,
// XOR), and the false-positive analysis of Equation 1.
//
// All filters in one deployment must be created with identical geometry
// (m bits, k hash functions, bit layout) so that their bit vectors are
// directly comparable and replicable across metadata servers; the algebraic
// operations enforce this and fail loudly on mismatch.
//
// Two bit layouts are supported. LayoutClassic spreads the k probe positions
// across the whole vector — the textbook arrangement, and the wire/snapshot
// format every earlier release produced. LayoutBlocked partitions the vector
// into 512-bit (cache-line-sized) blocks: the first hash selects one block
// and all k probes stay inside it, so a membership query costs one cache
// line instead of k. The layout is part of a filter's geometry and of its
// wire encoding (a distinct magic number), so mixed deployments fail loudly
// rather than silently mis-probing each other's replicas.
package bloom

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
)

// Common errors returned by filter operations.
var (
	// ErrGeometryMismatch is returned when two filters with different bit
	// lengths, hash counts or layouts are combined.
	ErrGeometryMismatch = errors.New("bloom: filter geometry mismatch")
	// ErrInvalidGeometry is returned when a filter is created with a
	// non-positive size or hash count.
	ErrInvalidGeometry = errors.New("bloom: invalid filter geometry")
)

const wordBits = 64

// Layout selects how a filter maps probe positions onto its bit vector.
type Layout uint8

const (
	// LayoutClassic spreads the k probes over the whole vector:
	// index_i = (h1 + i·h2) mod m.
	LayoutClassic Layout = iota
	// LayoutBlocked confines all k probes of a key to one 512-bit block
	// selected by h1, so a query touches a single cache line.
	LayoutBlocked
)

// String names the layout for diagnostics.
func (l Layout) String() string {
	switch l {
	case LayoutClassic:
		return "classic"
	case LayoutBlocked:
		return "blocked"
	default:
		return fmt.Sprintf("layout(%d)", uint8(l))
	}
}

// blockBits is the block size of LayoutBlocked: one 64-byte cache line.
const blockBits = 512

// Filter is a standard Bloom filter over byte-string keys.
//
// The zero value is not usable; construct filters with New, NewLayout or
// NewForCapacity.
//
// Concurrency: mutation (Add, Clear, Union, CopyFrom, …) requires external
// serialization at the layer that owns the filter — the MDS layer in this
// repository serializes writers behind per-node locks. Membership probes
// (Contains, ContainsDigest) are safe to run lock-free concurrently with a
// serialized writer: probes load words atomically and writers publish them
// atomically, so the epoch-snapshot read path never takes a lock to query a
// live filter. A probe racing an in-flight Add may miss that key until the
// add completes — the same transient miss the paper's asynchronous replica
// propagation already tolerates — but never corrupts the vector.
type Filter struct {
	m      uint64 // number of bits
	k      uint32 // number of hash functions
	n      uint64 // number of Add calls since creation/clear (approximate set size); atomic
	layout Layout
	words  []uint64
}

// New creates a classic-layout filter with exactly m bits and k hash
// functions.
func New(m uint64, k uint32) (*Filter, error) {
	return NewLayout(m, k, LayoutClassic)
}

// NewLayout creates a filter with the given geometry and bit layout. For
// LayoutBlocked, m is rounded up to a whole number of 512-bit blocks so
// every block is full-sized.
func NewLayout(m uint64, k uint32, layout Layout) (*Filter, error) {
	if m == 0 || k == 0 {
		return nil, fmt.Errorf("%w: m=%d k=%d", ErrInvalidGeometry, m, k)
	}
	switch layout {
	case LayoutClassic:
	case LayoutBlocked:
		if r := m % blockBits; r != 0 {
			m += blockBits - r
		}
	default:
		return nil, fmt.Errorf("%w: unknown layout %d", ErrInvalidGeometry, uint8(layout))
	}
	return &Filter{
		m:      m,
		k:      k,
		layout: layout,
		words:  make([]uint64, (m+wordBits-1)/wordBits),
	}, nil
}

// NewForCapacity creates a classic-layout filter sized for n items at the
// given bits-per-item ratio (the paper's m/n), using the optimal hash count
// k = (m/n)·ln 2. This is the constructor used throughout G-HBA, where
// bitsPerItem is a deployment parameter (8 and 16 are the ratios evaluated
// in Table 5).
func NewForCapacity(n uint64, bitsPerItem float64) (*Filter, error) {
	return NewForCapacityLayout(n, bitsPerItem, LayoutClassic)
}

// NewForCapacityLayout is NewForCapacity with an explicit bit layout.
func NewForCapacityLayout(n uint64, bitsPerItem float64, layout Layout) (*Filter, error) {
	if n == 0 || bitsPerItem <= 0 {
		return nil, fmt.Errorf("%w: n=%d bits/item=%f", ErrInvalidGeometry, n, bitsPerItem)
	}
	m := uint64(math.Ceil(float64(n) * bitsPerItem))
	return NewLayout(m, OptimalK(bitsPerItem), layout)
}

// OptimalK returns the hash count minimizing the false-positive rate for the
// given bits-per-item ratio: k = (m/n)·ln 2, at least 1.
func OptimalK(bitsPerItem float64) uint32 {
	k := uint32(math.Round(bitsPerItem * math.Ln2))
	if k == 0 {
		k = 1
	}
	return k
}

// M returns the filter length in bits.
func (f *Filter) M() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() uint32 { return f.k }

// Layout returns the filter's bit layout.
func (f *Filter) Layout() Layout { return f.layout }

// Count returns the number of insertions since creation or the last Clear.
// It over-counts re-insertions of the same key and is used only for load
// accounting, never for membership decisions. After Union or Intersect it is
// the clamped estimate those operations document.
func (f *Filter) Count() uint64 { return atomic.LoadUint64(&f.n) }

// indexOf returns the i-th probe position under the filter's layout.
func (f *Filter) indexOf(h1, h2 uint64, i uint32) uint64 {
	if f.layout == LayoutBlocked {
		return blockedIndexAt(h1, h2, i, f.m)
	}
	return indexAt(h1, h2, i, f.m)
}

// Add inserts key into the filter.
func (f *Filter) Add(key []byte) {
	h1, h2 := hashPair(key)
	f.addPair(h1, h2)
}

// AddString inserts a string key without copying it to a byte slice.
func (f *Filter) AddString(key string) {
	h1, h2 := hashPairString(key)
	f.addPair(h1, h2)
}

func (f *Filter) addPair(h1, h2 uint64) {
	for i := uint32(0); i < f.k; i++ {
		bit := f.indexOf(h1, h2, i)
		atomic.OrUint64(&f.words[bit/wordBits], 1<<(bit%wordBits))
	}
	atomic.AddUint64(&f.n, 1)
}

// Contains reports whether key may be in the set. False positives occur with
// probability roughly FalsePositiveRate; false negatives never occur for keys
// that were added and not removed (standard filters cannot remove).
func (f *Filter) Contains(key []byte) bool {
	h1, h2 := hashPair(key)
	return f.containsPair(h1, h2)
}

// ContainsString reports whether a string key may be in the set, without
// copying the key to a byte slice.
func (f *Filter) ContainsString(key string) bool {
	h1, h2 := hashPairString(key)
	return f.containsPair(h1, h2)
}

func (f *Filter) containsPair(h1, h2 uint64) bool {
	for i := uint32(0); i < f.k; i++ {
		bit := f.indexOf(h1, h2, i)
		if atomic.LoadUint64(&f.words[bit/wordBits])&(1<<(bit%wordBits)) == 0 {
			return false
		}
	}
	return true
}

// Clear resets the filter to empty.
func (f *Filter) Clear() {
	for i := range f.words {
		atomic.StoreUint64(&f.words[i], 0)
	}
	atomic.StoreUint64(&f.n, 0)
}

// Clone returns a deep copy of the filter.
func (f *Filter) Clone() *Filter {
	w := make([]uint64, len(f.words))
	copy(w, f.words)
	return &Filter{m: f.m, k: f.k, n: f.Count(), layout: f.layout, words: w}
}

// PopCount returns the number of set bits.
func (f *Filter) PopCount() uint64 {
	var c uint64
	for _, w := range f.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// FillRatio returns the fraction of bits set, the quantity that determines
// the observed false-positive rate.
func (f *Filter) FillRatio() float64 {
	return float64(f.PopCount()) / float64(f.m)
}

// SizeBytes returns the in-memory size of the bit vector in bytes. This is
// the unit the memory model (internal/memmodel) budgets against.
func (f *Filter) SizeBytes() uint64 { return uint64(len(f.words)) * 8 }

// EstimatedFPR returns the expected false-positive probability given the
// current fill ratio: p = fill^k.
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// EstimatedCount returns the Swamidass–Baldi cardinality estimate for the
// filter's current bit vector,
//
//	n̂ = −(m/k) · ln(1 − X/m),
//
// where X is the number of set bits. Unlike Count, which tallies Add calls,
// the estimate is derived purely from the vector, so it stays meaningful
// after set-algebraic operations where insertion counts cannot be combined
// exactly. A saturated filter (every bit set) carries no cardinality
// information and estimates the maximum uint64.
func (f *Filter) EstimatedCount() uint64 {
	fill := f.FillRatio()
	if fill >= 1 {
		return math.MaxUint64
	}
	est := -(float64(f.m) / float64(f.k)) * math.Log(1-fill)
	if est < 0 {
		return 0
	}
	return uint64(math.Round(est))
}

// Equal reports whether two filters have identical geometry and bit vectors.
func (f *Filter) Equal(g *Filter) bool {
	if f.m != g.m || f.k != g.k || f.layout != g.layout {
		return false
	}
	for i, w := range f.words {
		if g.words[i] != w {
			return false
		}
	}
	return true
}

// sameGeometry verifies that g can be combined with f.
func (f *Filter) sameGeometry(g *Filter) error {
	if f.m != g.m || f.k != g.k || f.layout != g.layout {
		return fmt.Errorf("%w: (m=%d,k=%d,%v) vs (m=%d,k=%d,%v)",
			ErrGeometryMismatch, f.m, f.k, f.layout, g.m, g.k, g.layout)
	}
	return nil
}

// setCount overwrites the insertion counter. Writers are externally
// serialized; the atomic store keeps lock-free Count readers race-clean.
func (f *Filter) setCount(n uint64) { atomic.StoreUint64(&f.n, n) }

// clampCount bounds an estimate into [lo, hi] (a union's true cardinality
// lies between the larger input and the sum of the inputs; an
// intersection's below the smaller input).
func clampCount(est, lo, hi uint64) uint64 {
	if est < lo {
		return lo
	}
	if est > hi {
		return hi
	}
	return est
}

// Union replaces f with BF(A∪B) by ORing the bit vectors (Property 1 of the
// paper). The resulting filter represents the union exactly: it answers
// positively for every member of either set, with a false-positive rate no
// lower than either input's.
//
// The insertion counter cannot be combined exactly — summing the inputs
// would double-count members present in both sets — so it is reset to the
// Swamidass–Baldi estimate of the merged vector (see EstimatedCount),
// clamped to the feasible range [max(n_A, n_B), n_A + n_B]. The counter
// feeds load accounting and ship/rebuild heuristics only, never membership
// answers.
func (f *Filter) Union(g *Filter) error {
	if err := f.sameGeometry(g); err != nil {
		return err
	}
	fn, gn := f.Count(), g.Count()
	for i, w := range g.words {
		atomic.StoreUint64(&f.words[i], f.words[i]|w)
	}
	f.setCount(clampCount(f.EstimatedCount(), max(fn, gn), fn+gn))
	return nil
}

// Intersect replaces f with the AND of the bit vectors. Per Property 2 of the
// paper this is a superset approximation of BF(A∩B): every member of A∩B
// still answers positively, but the false-positive rate exceeds that of a
// filter built directly from A∩B.
//
// The insertion counter is reset to the Swamidass–Baldi estimate of the
// intersected vector, clamped to [0, min(n_A, n_B)] — the true intersection
// can be empty and can never exceed the smaller input. Taking min alone (the
// previous behaviour) overstates heavily disjoint intersections.
func (f *Filter) Intersect(g *Filter) error {
	if err := f.sameGeometry(g); err != nil {
		return err
	}
	fn, gn := f.Count(), g.Count()
	for i, w := range g.words {
		atomic.StoreUint64(&f.words[i], f.words[i]&w)
	}
	f.setCount(clampCount(f.EstimatedCount(), 0, min(fn, gn)))
	return nil
}

// XorBits returns the Hamming distance between the two bit vectors. G-HBA
// uses this (Section 3.4) to decide when a remote replica is stale enough to
// justify pushing an update: the delta of a filter against its last-shipped
// snapshot is compared against a bit threshold.
func (f *Filter) XorBits(g *Filter) (uint64, error) {
	if err := f.sameGeometry(g); err != nil {
		return 0, err
	}
	var c uint64
	for i, w := range g.words {
		c += uint64(bits.OnesCount64(f.words[i] ^ w))
	}
	return c, nil
}

// Xor returns a new filter whose bit vector is the XOR of the inputs,
// representing BF(A⊕B) = BF(A−B) ∪ BF(B−A) per Property 3 when both inputs
// share bits and hash functions.
func (f *Filter) Xor(g *Filter) (*Filter, error) {
	if err := f.sameGeometry(g); err != nil {
		return nil, err
	}
	out := &Filter{m: f.m, k: f.k, layout: f.layout, words: make([]uint64, len(f.words))}
	for i := range f.words {
		out.words[i] = f.words[i] ^ g.words[i]
	}
	return out, nil
}

// CopyFrom overwrites f's bit vector and count with g's. It is the in-place
// replica-refresh primitive: an MDS receiving a full-filter update applies it
// without reallocating.
func (f *Filter) CopyFrom(g *Filter) error {
	if err := f.sameGeometry(g); err != nil {
		return err
	}
	for i, w := range g.words {
		atomic.StoreUint64(&f.words[i], w)
	}
	f.setCount(g.Count())
	return nil
}
