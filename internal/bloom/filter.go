// Package bloom implements the Bloom filter machinery that underpins G-HBA:
// standard bit-vector filters, counting filters that support deletion, the
// set-algebraic operations of Section 3.4 of the paper (union, intersection,
// XOR), and the false-positive analysis of Equation 1.
//
// All filters in one deployment must be created with identical geometry
// (m bits, k hash functions) so that their bit vectors are directly
// comparable and replicable across metadata servers; the algebraic
// operations enforce this and fail loudly on mismatch.
package bloom

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Common errors returned by filter operations.
var (
	// ErrGeometryMismatch is returned when two filters with different bit
	// lengths or hash counts are combined.
	ErrGeometryMismatch = errors.New("bloom: filter geometry mismatch")
	// ErrInvalidGeometry is returned when a filter is created with a
	// non-positive size or hash count.
	ErrInvalidGeometry = errors.New("bloom: invalid filter geometry")
)

const wordBits = 64

// Filter is a standard Bloom filter over byte-string keys.
//
// The zero value is not usable; construct filters with New or NewForCapacity.
// Filter is not safe for concurrent mutation; wrap it in a lock at the layer
// that owns it (the MDS layer in this repository does so).
type Filter struct {
	m     uint64 // number of bits
	k     uint32 // number of hash functions
	n     uint64 // number of Add calls since creation/clear (approximate set size)
	words []uint64
}

// New creates a filter with exactly m bits and k hash functions.
func New(m uint64, k uint32) (*Filter, error) {
	if m == 0 || k == 0 {
		return nil, fmt.Errorf("%w: m=%d k=%d", ErrInvalidGeometry, m, k)
	}
	return &Filter{
		m:     m,
		k:     k,
		words: make([]uint64, (m+wordBits-1)/wordBits),
	}, nil
}

// NewForCapacity creates a filter sized for n items at the given bits-per-item
// ratio (the paper's m/n), using the optimal hash count k = (m/n)·ln 2.
// This is the constructor used throughout G-HBA, where bitsPerItem is a
// deployment parameter (8 and 16 are the ratios evaluated in Table 5).
func NewForCapacity(n uint64, bitsPerItem float64) (*Filter, error) {
	if n == 0 || bitsPerItem <= 0 {
		return nil, fmt.Errorf("%w: n=%d bits/item=%f", ErrInvalidGeometry, n, bitsPerItem)
	}
	m := uint64(math.Ceil(float64(n) * bitsPerItem))
	return New(m, OptimalK(bitsPerItem))
}

// OptimalK returns the hash count minimizing the false-positive rate for the
// given bits-per-item ratio: k = (m/n)·ln 2, at least 1.
func OptimalK(bitsPerItem float64) uint32 {
	k := uint32(math.Round(bitsPerItem * math.Ln2))
	if k == 0 {
		k = 1
	}
	return k
}

// M returns the filter length in bits.
func (f *Filter) M() uint64 { return f.m }

// K returns the number of hash functions.
func (f *Filter) K() uint32 { return f.k }

// Count returns the number of insertions since creation or the last Clear.
// It over-counts re-insertions of the same key and is used only for load
// accounting, never for membership decisions.
func (f *Filter) Count() uint64 { return f.n }

// Add inserts key into the filter.
func (f *Filter) Add(key []byte) {
	h1, h2 := hashPair(key)
	f.addPair(h1, h2)
}

// AddString inserts a string key without copying it to a byte slice.
func (f *Filter) AddString(key string) {
	h1, h2 := hashPairString(key)
	f.addPair(h1, h2)
}

func (f *Filter) addPair(h1, h2 uint64) {
	for i := uint32(0); i < f.k; i++ {
		bit := indexAt(h1, h2, i, f.m)
		f.words[bit/wordBits] |= 1 << (bit % wordBits)
	}
	f.n++
}

// Contains reports whether key may be in the set. False positives occur with
// probability roughly FalsePositiveRate; false negatives never occur for keys
// that were added and not removed (standard filters cannot remove).
func (f *Filter) Contains(key []byte) bool {
	h1, h2 := hashPair(key)
	return f.containsPair(h1, h2)
}

// ContainsString reports whether a string key may be in the set, without
// copying the key to a byte slice.
func (f *Filter) ContainsString(key string) bool {
	h1, h2 := hashPairString(key)
	return f.containsPair(h1, h2)
}

func (f *Filter) containsPair(h1, h2 uint64) bool {
	for i := uint32(0); i < f.k; i++ {
		bit := indexAt(h1, h2, i, f.m)
		if f.words[bit/wordBits]&(1<<(bit%wordBits)) == 0 {
			return false
		}
	}
	return true
}

// Clear resets the filter to empty.
func (f *Filter) Clear() {
	for i := range f.words {
		f.words[i] = 0
	}
	f.n = 0
}

// Clone returns a deep copy of the filter.
func (f *Filter) Clone() *Filter {
	w := make([]uint64, len(f.words))
	copy(w, f.words)
	return &Filter{m: f.m, k: f.k, n: f.n, words: w}
}

// PopCount returns the number of set bits.
func (f *Filter) PopCount() uint64 {
	var c uint64
	for _, w := range f.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// FillRatio returns the fraction of bits set, the quantity that determines
// the observed false-positive rate.
func (f *Filter) FillRatio() float64 {
	return float64(f.PopCount()) / float64(f.m)
}

// SizeBytes returns the in-memory size of the bit vector in bytes. This is
// the unit the memory model (internal/memmodel) budgets against.
func (f *Filter) SizeBytes() uint64 { return uint64(len(f.words)) * 8 }

// EstimatedFPR returns the expected false-positive probability given the
// current fill ratio: p = fill^k.
func (f *Filter) EstimatedFPR() float64 {
	return math.Pow(f.FillRatio(), float64(f.k))
}

// Equal reports whether two filters have identical geometry and bit vectors.
func (f *Filter) Equal(g *Filter) bool {
	if f.m != g.m || f.k != g.k {
		return false
	}
	for i, w := range f.words {
		if g.words[i] != w {
			return false
		}
	}
	return true
}

// sameGeometry verifies that g can be combined with f.
func (f *Filter) sameGeometry(g *Filter) error {
	if f.m != g.m || f.k != g.k {
		return fmt.Errorf("%w: (m=%d,k=%d) vs (m=%d,k=%d)",
			ErrGeometryMismatch, f.m, f.k, g.m, g.k)
	}
	return nil
}

// Union replaces f with BF(A∪B) by ORing the bit vectors (Property 1 of the
// paper). The resulting filter represents the union exactly: it answers
// positively for every member of either set, with a false-positive rate no
// lower than either input's.
func (f *Filter) Union(g *Filter) error {
	if err := f.sameGeometry(g); err != nil {
		return err
	}
	for i, w := range g.words {
		f.words[i] |= w
	}
	f.n += g.n
	return nil
}

// Intersect replaces f with the AND of the bit vectors. Per Property 2 of the
// paper this is a superset approximation of BF(A∩B): every member of A∩B
// still answers positively, but the false-positive rate exceeds that of a
// filter built directly from A∩B.
func (f *Filter) Intersect(g *Filter) error {
	if err := f.sameGeometry(g); err != nil {
		return err
	}
	for i, w := range g.words {
		f.words[i] &= w
	}
	if g.n < f.n {
		f.n = g.n
	}
	return nil
}

// XorBits returns the Hamming distance between the two bit vectors. G-HBA
// uses this (Section 3.4) to decide when a remote replica is stale enough to
// justify pushing an update: the delta of a filter against its last-shipped
// snapshot is compared against a bit threshold.
func (f *Filter) XorBits(g *Filter) (uint64, error) {
	if err := f.sameGeometry(g); err != nil {
		return 0, err
	}
	var c uint64
	for i, w := range g.words {
		c += uint64(bits.OnesCount64(f.words[i] ^ w))
	}
	return c, nil
}

// Xor returns a new filter whose bit vector is the XOR of the inputs,
// representing BF(A⊕B) = BF(A−B) ∪ BF(B−A) per Property 3 when both inputs
// share bits and hash functions.
func (f *Filter) Xor(g *Filter) (*Filter, error) {
	if err := f.sameGeometry(g); err != nil {
		return nil, err
	}
	out := &Filter{m: f.m, k: f.k, words: make([]uint64, len(f.words))}
	for i := range f.words {
		out.words[i] = f.words[i] ^ g.words[i]
	}
	return out, nil
}

// CopyFrom overwrites f's bit vector and count with g's. It is the in-place
// replica-refresh primitive: an MDS receiving a full-filter update applies it
// without reallocating.
func (f *Filter) CopyFrom(g *Filter) error {
	if err := f.sameGeometry(g); err != nil {
		return err
	}
	copy(f.words, g.words)
	f.n = g.n
	return nil
}
