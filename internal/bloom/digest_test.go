package bloom

import (
	"fmt"
	"math/rand"
	"testing"
)

// randKey draws a random printable key of random length.
func randKey(rng *rand.Rand) []byte {
	n := 1 + rng.Intn(64)
	key := make([]byte, n)
	for i := range key {
		key[i] = byte(' ' + rng.Intn(95))
	}
	return key
}

// TestDigestStringMatchesBytes checks that the allocation-free string hasher
// derives the same digest as the byte-slice path.
func TestDigestStringMatchesBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1_000; i++ {
		key := randKey(rng)
		db := NewDigest(key)
		ds := NewDigestString(string(key))
		if db.h1 != ds.h1 || db.h2 != ds.h2 {
			t.Fatalf("digest mismatch for %q: bytes (%d,%d) vs string (%d,%d)",
				key, db.h1, db.h2, ds.h1, ds.h2)
		}
	}
}

// TestContainsDigestEquivalence is the property test of the hash-once
// pipeline: for random keys and random geometries — including k beyond the
// position-cache bound — ContainsDigest must answer exactly like Contains,
// and AddDigest must set exactly the bits Add would.
func TestContainsDigestEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		m := uint64(64 + rng.Intn(8192))
		k := uint32(1 + rng.Intn(40)) // crosses digestMaxK to hit the fallback
		byKey, err := New(m, k)
		if err != nil {
			t.Fatal(err)
		}
		byDigest, err := New(m, k)
		if err != nil {
			t.Fatal(err)
		}
		var keys [][]byte
		for i := 0; i < 100; i++ {
			key := randKey(rng)
			keys = append(keys, key)
			byKey.Add(key)
			d := NewDigest(key)
			byDigest.AddDigest(&d)
		}
		if !byKey.Equal(byDigest) {
			t.Fatalf("m=%d k=%d: AddDigest diverged from Add (bit vectors differ)", m, k)
		}
		for i := 0; i < 500; i++ {
			key := randKey(rng)
			if i < len(keys) {
				key = keys[i] // guaranteed positives
			}
			d := NewDigest(key)
			if got, want := byKey.ContainsDigest(&d), byKey.Contains(key); got != want {
				t.Fatalf("m=%d k=%d key=%q: ContainsDigest=%v Contains=%v", m, k, key, got, want)
			}
		}
	}
}

// TestDigestGeometrySwitch checks that one digest probed against different
// geometries re-materializes its positions correctly — the L1→L2 pattern
// where the LRU and segment filters differ in size.
func TestDigestGeometrySwitch(t *testing.T) {
	small, _ := New(512, 4)
	big, _ := New(65_536, 11)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		key := randKey(rng)
		if i%2 == 0 {
			small.Add(key)
		} else {
			big.Add(key)
		}
	}
	for i := 0; i < 300; i++ {
		key := randKey(rng)
		d := NewDigest(key)
		// Alternate probes against both geometries with one digest.
		for rep := 0; rep < 2; rep++ {
			if got, want := small.ContainsDigest(&d), small.Contains(key); got != want {
				t.Fatalf("small geometry: ContainsDigest=%v Contains=%v for %q", got, want, key)
			}
			if got, want := big.ContainsDigest(&d), big.Contains(key); got != want {
				t.Fatalf("big geometry: ContainsDigest=%v Contains=%v for %q", got, want, key)
			}
		}
	}
}

// TestCountingDigestEquivalence mirrors the property test for counting
// filters: AddDigest/RemoveDigest/ContainsDigest versus their key-hashing
// twins.
func TestCountingDigestEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		m := uint64(64 + rng.Intn(2048))
		k := uint32(1 + rng.Intn(40))
		byKey, err := NewCounting(m, k)
		if err != nil {
			t.Fatal(err)
		}
		byDigest, err := NewCounting(m, k)
		if err != nil {
			t.Fatal(err)
		}
		var keys [][]byte
		for i := 0; i < 60; i++ {
			key := randKey(rng)
			keys = append(keys, key)
			byKey.Add(key)
			d := NewDigest(key)
			byDigest.AddDigest(&d)
		}
		// Remove half through each path.
		for i := 0; i < 30; i++ {
			byKey.Remove(keys[i])
			d := NewDigest(keys[i])
			byDigest.RemoveDigest(&d)
		}
		for i := 0; i < 300; i++ {
			key := randKey(rng)
			if i < len(keys) {
				key = keys[i]
			}
			d := NewDigest(key)
			if got, want := byDigest.ContainsDigest(&d), byKey.Contains(key); got != want {
				t.Fatalf("m=%d k=%d key=%q: counting ContainsDigest=%v Contains=%v",
					m, k, key, got, want)
			}
		}
	}
}

// TestContainsDigestZeroAlloc pins the headline property: a digest probe
// performs no heap allocation, and neither does the string-keyed Contains.
func TestContainsDigestZeroAlloc(t *testing.T) {
	f, err := NewForCapacity(10_000, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		f.AddString(fmt.Sprintf("/alloc/file%d", i))
	}
	d := NewDigestString("/alloc/file7")
	if allocs := testing.AllocsPerRun(1_000, func() {
		if !f.ContainsDigest(&d) {
			t.Fatal("added key not found")
		}
	}); allocs != 0 {
		t.Errorf("ContainsDigest allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(1_000, func() {
		if !f.ContainsString("/alloc/file7") {
			t.Fatal("added key not found")
		}
	}); allocs != 0 {
		t.Errorf("ContainsString allocates %.1f objects/op, want 0", allocs)
	}
}
