package bloom

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeedFilter builds a small filter with a few keys for the seed corpus.
func fuzzSeedFilter(tb testing.TB, capacity uint64, bits float64, keys ...string) []byte {
	tb.Helper()
	f, err := NewForCapacity(capacity, bits)
	if err != nil {
		tb.Fatal(err)
	}
	for _, k := range keys {
		f.AddString(k)
	}
	data, err := f.MarshalBinary()
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzFilterMarshal fuzzes the wire decoder with arbitrary bytes: decoding
// must never panic, and any input the decoder accepts must re-encode and
// re-decode to an identical filter (decode∘encode is the identity on the
// image of encode). The seed corpus covers valid encodings, truncations,
// wrong magics, and headers with adversarial geometry.
func FuzzFilterMarshal(f *testing.F) {
	// Valid encodings.
	f.Add(fuzzSeedFilter(f, 64, 8))
	f.Add(fuzzSeedFilter(f, 128, 16, "/a/b/c", "/d/e/f", "/sub0/d1/d2/f3"))
	big := fuzzSeedFilter(f, 4_096, 12, "/x")
	f.Add(big)
	// Truncated header and truncated body.
	f.Add(big[:5])
	f.Add(big[:len(big)-3])
	// Wrong magic (a counting-filter header on filter bytes).
	wrongMagic := bytes.Clone(big)
	binary.BigEndian.PutUint16(wrongMagic[0:2], 0xB1F1)
	f.Add(wrongMagic)
	// Adversarial geometry: m near 2^64 (word-count overflow bait), huge k.
	overflow := bytes.Clone(big)
	binary.BigEndian.PutUint64(overflow[2:10], ^uint64(0))
	f.Add(overflow)
	hugeK := bytes.Clone(big)
	binary.BigEndian.PutUint32(hugeK[10:14], ^uint32(0))
	f.Add(hugeK)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		var flt Filter
		if err := flt.UnmarshalBinary(data); err != nil {
			return // rejected input: the only requirement is not panicking
		}
		enc, err := flt.MarshalBinary()
		if err != nil {
			t.Fatalf("re-encoding accepted input: %v", err)
		}
		var back Filter
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if !back.Equal(&flt) {
			t.Fatalf("round-trip changed filter: m=%d/%d k=%d/%d", back.M(), flt.M(), back.K(), flt.K())
		}
		if back.Count() != flt.Count() {
			t.Fatalf("round-trip changed count: %d vs %d", back.Count(), flt.Count())
		}
		if !bytes.Equal(enc, mustEncode(t, &back)) {
			t.Fatal("encoding is not canonical")
		}
	})
}

// FuzzFilterRoundTrip fuzzes the encode side from constructed filters:
// decode(encode(f)) must equal f for any geometry and key set the package
// can build.
func FuzzFilterRoundTrip(f *testing.F) {
	f.Add(uint16(10), byte(8), []byte("/a\x00/b/longer/path\x00x"))
	f.Add(uint16(1), byte(1), []byte(""))
	f.Add(uint16(1000), byte(24), []byte("key"))

	f.Fuzz(func(t *testing.T, capacity uint16, bits byte, keyBlob []byte) {
		flt, err := NewForCapacity(uint64(capacity)+1, float64(bits%64)+0.5)
		if err != nil {
			t.Skipf("geometry rejected: %v", err)
		}
		for _, key := range bytes.Split(keyBlob, []byte{0}) {
			flt.Add(key)
		}
		enc, err := flt.MarshalBinary()
		if err != nil {
			t.Fatalf("encoding: %v", err)
		}
		var back Filter
		if err := back.UnmarshalBinary(enc); err != nil {
			t.Fatalf("decoding: %v", err)
		}
		if !back.Equal(flt) || back.Count() != flt.Count() {
			t.Fatal("decode(encode(f)) ≠ f")
		}
		// Probe parity: a decoded filter answers like the original.
		for _, key := range bytes.Split(keyBlob, []byte{0}) {
			if !back.Contains(key) {
				t.Fatalf("decoded filter lost key %q", key)
			}
		}
	})
}

func mustEncode(t *testing.T, f *Filter) []byte {
	t.Helper()
	enc, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return enc
}
