package bloom

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// randomKeys returns n distinct keys drawn from a disjoint namespace per
// prefix, so "member" and "probe" sets never collide.
func randomKeys(prefix string, n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("/%s/d%d/f%d", prefix, i%97, i)
	}
	return keys
}

// Digest-based and direct probes must agree bit-for-bit on the blocked
// layout: a digest caches only the two base hashes, and the blocked
// position schedule is derived from those same hashes.
func TestBlockedContainsDigestMatchesContains(t *testing.T) {
	f, err := NewForCapacityLayout(2000, 8, LayoutBlocked)
	if err != nil {
		t.Fatal(err)
	}
	members := randomKeys("in", 2000)
	for _, k := range members {
		f.AddString(k)
	}
	for _, set := range [][]string{members, randomKeys("out", 5000)} {
		for _, k := range set {
			d := NewDigestString(k)
			if got, want := f.ContainsDigest(&d), f.ContainsString(k); got != want {
				t.Fatalf("ContainsDigest(%q) = %v, ContainsString = %v", k, got, want)
			}
		}
	}
}

// A Bloom filter never false-negatives; the blocked layout must preserve
// that under plain adds, digest adds, and unions.
func TestBlockedNoFalseNegatives(t *testing.T) {
	a, err := NewForCapacityLayout(1500, 8, LayoutBlocked)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewLayout(a.M(), a.K(), LayoutBlocked)
	if err != nil {
		t.Fatal(err)
	}
	aKeys := randomKeys("a", 1500)
	bKeys := randomKeys("b", 1500)
	for _, k := range aKeys {
		a.AddString(k)
	}
	for _, k := range bKeys {
		d := NewDigestString(k)
		b.AddDigest(&d)
	}
	for _, k := range aKeys {
		if !a.ContainsString(k) {
			t.Fatalf("false negative for %q after AddString", k)
		}
	}
	for _, k := range bKeys {
		if !b.ContainsString(k) {
			t.Fatalf("false negative for %q after AddDigest", k)
		}
	}
	if err := a.Union(b); err != nil {
		t.Fatal(err)
	}
	for _, k := range append(aKeys, bKeys...) {
		if !a.ContainsString(k) {
			t.Fatalf("false negative for %q after Union", k)
		}
	}
}

// XOR-delta shipping (Section 3.4 of the paper) must round-trip on the
// blocked layout: for old ⊆ new, old ∪ (new ⊕ old) reconstructs new's bit
// vector exactly, so a replica patched by delta answers identically to one
// refreshed by full copy.
func TestBlockedXorDeltaShip(t *testing.T) {
	old, err := NewForCapacityLayout(3000, 16, LayoutBlocked)
	if err != nil {
		t.Fatal(err)
	}
	base := randomKeys("base", 1500)
	for _, k := range base {
		old.AddString(k)
	}
	next := old.Clone()
	extra := randomKeys("extra", 1500)
	for _, k := range extra {
		next.AddString(k)
	}
	delta, err := next.Xor(old)
	if err != nil {
		t.Fatal(err)
	}
	if err := old.Union(delta); err != nil {
		t.Fatal(err)
	}
	if !old.Equal(next) {
		t.Fatal("old ∪ (new ⊕ old) differs from new")
	}
	for _, k := range append(base, extra...) {
		if !old.ContainsString(k) {
			t.Fatalf("false negative for %q after delta patch", k)
		}
	}
}

// blockedFPRBound is the analog of the paper's Equation 1 for the blocked
// layout. With blocks of B = 512 bits and the whole probe schedule confined
// to one block, a filter holding n keys in m bits is a mixture of little
// B-bit filters whose loads j are Poisson(λ = n·B/m); each answers a probe
// positively with the classic rate (1 − (1 − 1/B)^(k·j))^k. The mixture is
// summed far enough past the mean that the truncated tail is negligible.
func blockedFPRBound(n, m uint64, k uint32) float64 {
	lambda := float64(n) * blockBits / float64(m)
	// Poisson pmf iteratively: p(0) = e^-λ, p(j) = p(j-1)·λ/j.
	p := math.Exp(-lambda)
	sum := 0.0
	hi := int(lambda + 12*math.Sqrt(lambda) + 12)
	for j := 0; j <= hi; j++ {
		if j > 0 {
			p *= lambda / float64(j)
		}
		inner := 1 - math.Pow(1-1.0/blockBits, float64(k)*float64(j))
		sum += p * math.Pow(inner, float64(k))
	}
	return sum
}

// The measured false-positive rate of a blocked filter must stay within the
// Poisson-mixture bound at the two bits-per-file ratios the paper evaluates
// (Table 5). The mixture assumes k independent probes per block; the real
// schedule is a double-hashed arithmetic progression over 512 offsets, whose
// collisions between keys sharing a block inflate the rate — noticeably so
// at k=11, where whole-schedule collisions guarantee false positives. The
// 3× slack absorbs that structure plus sampling noise; the point of the
// test is that blocking costs a bounded constant factor, not an asymptotic
// blowup.
func TestBlockedFPRWithinBound(t *testing.T) {
	const members = 20000
	const probes = 200000
	for _, bpf := range []float64{8, 16} {
		f, err := NewForCapacityLayout(members, bpf, LayoutBlocked)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range randomKeys("in", members) {
			f.AddString(k)
		}
		fp := 0
		for _, k := range randomKeys("probe", probes) {
			if f.ContainsString(k) {
				fp++
			}
		}
		got := float64(fp) / probes
		bound := blockedFPRBound(members, f.M(), f.K())
		classic := math.Pow(1-math.Exp(-float64(f.K())*members/float64(f.M())), float64(f.K()))
		t.Logf("bpf=%v k=%d: measured %.5f, blocked bound %.5f, classic %.5f", bpf, f.K(), got, bound, classic)
		if bound < classic {
			t.Errorf("bpf=%v: blocked bound %.5f below classic %.5f — mixture computed wrong", bpf, bound, classic)
		}
		if got > 3*bound {
			t.Errorf("bpf=%v: measured FPR %.5f exceeds 3× blocked bound %.5f", bpf, got, bound)
		}
	}
}

// Union and Intersect cannot recover exact cardinalities from bit vectors,
// so they fall back to the Swamidass–Baldi estimate clamped to the feasible
// range. The property test sweeps overlap fractions and checks the
// estimator lands in-range and near the true cardinality on both layouts.
func TestUnionIntersectCountEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, layout := range []Layout{LayoutClassic, LayoutBlocked} {
		for _, overlap := range []float64{0, 0.25, 0.5, 1} {
			const n = 3000
			shared := int(overlap * n)
			a, err := NewForCapacityLayout(2*n, 16, layout)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewLayout(a.M(), a.K(), layout)
			if err != nil {
				t.Fatal(err)
			}
			pool := randomKeys(fmt.Sprintf("ov%v", overlap), 2*n-shared)
			for i := 0; i < n; i++ {
				a.AddString(pool[i])
			}
			for i := n - shared; i < 2*n-shared; i++ {
				b.AddString(pool[i])
			}
			_ = rng

			u := a.Clone()
			if err := u.Union(b); err != nil {
				t.Fatal(err)
			}
			trueUnion := uint64(2*n - shared)
			if u.Count() < n || u.Count() > 2*n {
				t.Errorf("%v overlap %v: union count %d outside clamp [%d, %d]", layout, overlap, u.Count(), n, 2*n)
			}
			if relErr(u.Count(), trueUnion) > 0.1 {
				t.Errorf("%v overlap %v: union count %d, true %d (>10%% off)", layout, overlap, u.Count(), trueUnion)
			}

			i := a.Clone()
			if err := i.Intersect(b); err != nil {
				t.Fatal(err)
			}
			if i.Count() > n {
				t.Errorf("%v overlap %v: intersect count %d above clamp %d", layout, overlap, i.Count(), n)
			}
			// Intersecting vectors is a superset approximation of A∩B, so
			// the estimate should not land materially below the true
			// intersection (a few percent of Swamidass–Baldi noise aside).
			if float64(i.Count()) < 0.95*float64(shared) {
				t.Errorf("%v overlap %v: intersect count %d well below true %d", layout, overlap, i.Count(), shared)
			}
		}
	}
}

func relErr(got, want uint64) float64 {
	if want == 0 {
		return float64(got)
	}
	return math.Abs(float64(got)-float64(want)) / float64(want)
}
