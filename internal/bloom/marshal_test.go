package bloom

import (
	"strconv"
	"testing"
	"testing/quick"
)

func TestFilterMarshalRoundTrip(t *testing.T) {
	f := mustNew(t, 1<<12, 6)
	for i := 0; i < 500; i++ {
		f.AddString("file" + strconv.Itoa(i))
	}
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if !f.Equal(&g) {
		t.Error("round trip changed bit vector")
	}
	if g.Count() != f.Count() {
		t.Errorf("round trip count %d, want %d", g.Count(), f.Count())
	}
}

func TestFilterMarshalRoundTripProperty(t *testing.T) {
	err := quick.Check(func(keys []string) bool {
		f, err := New(2048, 4)
		if err != nil {
			return false
		}
		for _, k := range keys {
			f.AddString(k)
		}
		data, err := f.MarshalBinary()
		if err != nil {
			return false
		}
		var g Filter
		if err := g.UnmarshalBinary(data); err != nil {
			return false
		}
		return f.Equal(&g)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Errorf("marshal round-trip property violated: %v", err)
	}
}

func TestCountingMarshalRoundTrip(t *testing.T) {
	c := mustNewCounting(t, 3000, 5)
	for i := 0; i < 200; i++ {
		c.AddString("k" + strconv.Itoa(i))
	}
	c.RemoveString("k0")
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var d CountingFilter
	if err := d.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if d.M() != c.M() || d.K() != c.K() || d.Count() != c.Count() {
		t.Fatal("round trip changed geometry or count")
	}
	for i := range c.counters {
		if c.counters[i] != d.counters[i] {
			t.Fatalf("counter %d differs after round trip", i)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	var f Filter
	if err := f.UnmarshalBinary(nil); err == nil {
		t.Error("nil input accepted")
	}
	if err := f.UnmarshalBinary([]byte{1, 2, 3}); err == nil {
		t.Error("short input accepted")
	}
	// Valid counting header fed to Filter: magic mismatch.
	c := mustNewCounting(t, 64, 2)
	data, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.UnmarshalBinary(data); err == nil {
		t.Error("counting payload accepted as filter")
	}
	var c2 CountingFilter
	f2 := mustNew(t, 64, 2)
	fdata, err := f2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.UnmarshalBinary(fdata); err == nil {
		t.Error("filter payload accepted as counting filter")
	}
}

func TestUnmarshalRejectsTruncatedBody(t *testing.T) {
	f := mustNew(t, 1024, 4)
	f.AddString("x")
	data, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var g Filter
	if err := g.UnmarshalBinary(data[:len(data)-4]); err == nil {
		t.Error("truncated body accepted")
	}
	// Extended body must also be rejected.
	if err := g.UnmarshalBinary(append(data, 0)); err == nil {
		t.Error("oversized body accepted")
	}
}

func TestUnmarshalRejectsZeroGeometryHeader(t *testing.T) {
	data := make([]byte, headerLen)
	putHeader(data, magicFilter, 0, 0, 0)
	var f Filter
	if err := f.UnmarshalBinary(data); err == nil {
		t.Error("zero-geometry header accepted")
	}
}
