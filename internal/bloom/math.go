package bloom

import "math"

// optimalBase is 0.6185 in the paper: the minimum false-positive rate of a
// standard Bloom filter with optimal k is f0 = (1/2)^k ≈ 0.6185^(m/n).
const optimalBase = 0.6185

// FalsePositiveRate returns the classical approximation of the false-positive
// probability of a Bloom filter with m bits, n inserted items, and k hash
// functions: (1 − e^(−kn/m))^k.
func FalsePositiveRate(m, n uint64, k uint32) float64 {
	if n == 0 {
		return 0
	}
	if m == 0 {
		return 1
	}
	return math.Pow(1-math.Exp(-float64(k)*float64(n)/float64(m)), float64(k))
}

// OptimalFalsePositiveRate returns f0, the minimum achievable false-positive
// rate at ratio bitsPerItem = m/n when k = (m/n)·ln 2, which the paper
// approximates as 0.6185^(m/n).
func OptimalFalsePositiveRate(bitsPerItem float64) float64 {
	if bitsPerItem <= 0 {
		return 1
	}
	return math.Pow(optimalBase, bitsPerItem)
}

// SegmentFalsePositive evaluates Equation 1 of the paper: the probability
// that a segment Bloom filter array holding theta replicas returns a unique
// but wrong hit,
//
//	f⁺g = θ · f0 · (1 − f0)^(θ−1),  f0 = 0.6185^(m/n),
//
// i.e. exactly one of the θ filters fires falsely. theta is the number of
// replicas stored locally on one MDS and bitsPerItem the filter ratio m/n.
func SegmentFalsePositive(theta int, bitsPerItem float64) float64 {
	if theta <= 0 {
		return 0
	}
	f0 := OptimalFalsePositiveRate(bitsPerItem)
	return float64(theta) * f0 * math.Pow(1-f0, float64(theta-1))
}

// UniqueHitProbability returns the probability that an array of total filters
// yields exactly one positive answer for a key stored in exactly one of them,
// given each filter's false-positive rate fpr. The true home filter always
// answers positively (no false negatives), so a unique hit requires all
// total−1 other filters to stay silent.
func UniqueHitProbability(total int, fpr float64) float64 {
	if total <= 0 {
		return 0
	}
	return math.Pow(1-fpr, float64(total-1))
}
