package bloom

import (
	"strconv"
	"testing"
	"testing/quick"
)

func mustNewCounting(t *testing.T, m uint64, k uint32) *CountingFilter {
	t.Helper()
	c, err := NewCounting(m, k)
	if err != nil {
		t.Fatalf("NewCounting(%d, %d): %v", m, k, err)
	}
	return c
}

func TestCountingRejectsInvalidGeometry(t *testing.T) {
	if _, err := NewCounting(0, 3); err == nil {
		t.Error("NewCounting(0,3) succeeded")
	}
	if _, err := NewCounting(64, 0); err == nil {
		t.Error("NewCounting(64,0) succeeded")
	}
	if _, err := NewCountingForCapacity(0, 8); err == nil {
		t.Error("NewCountingForCapacity(0,8) succeeded")
	}
	if _, err := NewCountingForCapacity(5, -1); err == nil {
		t.Error("NewCountingForCapacity(5,-1) succeeded")
	}
}

func TestCountingAddRemoveContains(t *testing.T) {
	c := mustNewCounting(t, 4096, 5)
	c.AddString("alpha")
	c.AddString("beta")
	if !c.ContainsString("alpha") || !c.ContainsString("beta") {
		t.Fatal("missing inserted keys")
	}
	c.RemoveString("alpha")
	if c.ContainsString("alpha") && c.Count() != 1 {
		// alpha may still test positive via beta's bits; only the count is exact
		t.Logf("alpha still positive after remove (allowed false positive)")
	}
	if !c.ContainsString("beta") {
		t.Error("remove of alpha broke membership of beta")
	}
	if c.Count() != 1 {
		t.Errorf("Count = %d, want 1", c.Count())
	}
}

func TestCountingDeleteRestoresPriorAnswers(t *testing.T) {
	// Property: for disjoint bit positions, removing an added key restores
	// the filter's answers for every other key. We verify the weaker exact
	// invariant: counters return to their prior values.
	c := mustNewCounting(t, 1<<12, 5)
	for i := 0; i < 100; i++ {
		c.AddString("stable" + strconv.Itoa(i))
	}
	before := c.Clone()
	for i := 0; i < 50; i++ {
		c.AddString("transient" + strconv.Itoa(i))
	}
	for i := 0; i < 50; i++ {
		c.RemoveString("transient" + strconv.Itoa(i))
	}
	for i, v := range c.counters {
		if v != before.counters[i] {
			t.Fatalf("counter %d = %d, want %d after add/remove cycle", i, v, before.counters[i])
		}
	}
}

func TestCountingAddRemoveProperty(t *testing.T) {
	err := quick.Check(func(keys []string) bool {
		c, err := NewCounting(1<<12, 5)
		if err != nil {
			return false
		}
		for _, k := range keys {
			c.AddString(k)
		}
		for _, k := range keys {
			if !c.ContainsString(k) {
				return false // no false negatives while present
			}
		}
		for _, k := range keys {
			c.RemoveString(k)
		}
		return c.Count() == 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Errorf("add/remove property violated: %v", err)
	}
}

func TestCountingRemoveNeverUnderflows(t *testing.T) {
	c := mustNewCounting(t, 256, 3)
	c.RemoveString("ghost") // never added
	for i, v := range c.counters {
		if v != 0 {
			t.Fatalf("counter %d = %d after removing non-member", i, v)
		}
	}
	if c.Count() != 0 {
		t.Errorf("Count = %d, want 0", c.Count())
	}
}

func TestCountingSaturation(t *testing.T) {
	c := mustNewCounting(t, 8, 1)
	// Hammer a single key until its counter saturates.
	for i := 0; i < 300; i++ {
		c.AddString("x")
	}
	if !c.ContainsString("x") {
		t.Fatal("saturated key not contained")
	}
	// Saturated counters must never decrement (safety over accuracy).
	for i := 0; i < 300; i++ {
		c.RemoveString("x")
	}
	if !c.ContainsString("x") {
		t.Error("saturated counter was decremented to zero")
	}
}

func TestCountingClear(t *testing.T) {
	c := mustNewCounting(t, 512, 4)
	c.AddString("a")
	c.Clear()
	if c.ContainsString("a") || c.Count() != 0 {
		t.Error("Clear did not reset filter")
	}
}

func TestCountingClone(t *testing.T) {
	c := mustNewCounting(t, 512, 4)
	c.AddString("a")
	d := c.Clone()
	d.AddString("b")
	if c.ContainsString("b") && c.Count() != 1 {
		t.Error("clone mutation leaked into original")
	}
	if !d.ContainsString("a") {
		t.Error("clone lost original key")
	}
}

func TestCountingToFilter(t *testing.T) {
	c := mustNewCounting(t, 2048, 4)
	keys := []string{"p", "q", "r"}
	for _, k := range keys {
		c.AddString(k)
	}
	f := c.ToFilter()
	if f.M() != c.M() || f.K() != c.K() {
		t.Fatalf("ToFilter geometry (%d,%d), want (%d,%d)", f.M(), f.K(), c.M(), c.K())
	}
	for _, k := range keys {
		if !f.ContainsString(k) {
			t.Errorf("flattened filter missing %q", k)
		}
	}
	if f.Count() != c.Count() {
		t.Errorf("flattened count %d, want %d", f.Count(), c.Count())
	}
}

func TestCountingSizeBytes(t *testing.T) {
	c := mustNewCounting(t, 1000, 4)
	if c.SizeBytes() != 1000 {
		t.Errorf("SizeBytes = %d, want 1000", c.SizeBytes())
	}
}

func TestCountingForCapacityMinimumSize(t *testing.T) {
	c, err := NewCountingForCapacity(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if c.M() == 0 {
		t.Error("capacity constructor produced zero-size filter")
	}
}
