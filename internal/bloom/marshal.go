package bloom

import (
	"encoding"
	"encoding/binary"
	"fmt"
)

// Binary wire format shared by the simulator checkpoints and the prototype
// RPC layer. Layout (big endian):
//
//	magic  uint16  — 0xB1F0 classic Filter, 0xB1F2 blocked Filter,
//	                 0xB1F1 CountingFilter
//	m      uint64
//	k      uint32
//	n      uint64
//	body   — Filter: ⌈m/64⌉ uint64 words; CountingFilter: m uint8 counters
//
// The magic number doubles as the geometry tag for the bit layout: a classic
// filter round-trips byte-for-byte as it always has (0xB1F0), while a
// blocked filter announces itself with 0xB1F2 so a decoder that predates the
// blocked layout rejects it loudly instead of probing the vector with the
// wrong position function. Counting filters are classic-only.

const (
	magicFilter        uint16 = 0xB1F0
	magicCounting      uint16 = 0xB1F1
	magicBlockedFilter uint16 = 0xB1F2
	headerLen                 = 2 + 8 + 4 + 8

	// maxWireM and maxWireK bound decoded geometry. A filter body must
	// match m anyway, so a huge m cannot force a huge allocation — but an
	// unchecked m near 2^64 overflows the word-count arithmetic, and an
	// absurd k would make every later probe of a decoded filter loop for
	// seconds (a cheap denial of service through the prototype's RPC
	// layer). 2^48 bits is 32 TiB of filter, and the optimal k for any
	// realistic bits-per-item ratio is well under 64; both caps are far
	// outside anything a peer can legitimately ship.
	maxWireM = uint64(1) << 48
	maxWireK = uint32(512)
)

var (
	_ encoding.BinaryMarshaler   = (*Filter)(nil)
	_ encoding.BinaryUnmarshaler = (*Filter)(nil)
	_ encoding.BinaryMarshaler   = (*CountingFilter)(nil)
	_ encoding.BinaryUnmarshaler = (*CountingFilter)(nil)
)

// wireMagic returns the magic announcing the filter's layout on the wire.
func (f *Filter) wireMagic() uint16 {
	if f.layout == LayoutBlocked {
		return magicBlockedFilter
	}
	return magicFilter
}

func putHeader(buf []byte, magic uint16, m uint64, k uint32, n uint64) {
	binary.BigEndian.PutUint16(buf[0:2], magic)
	binary.BigEndian.PutUint64(buf[2:10], m)
	binary.BigEndian.PutUint32(buf[10:14], k)
	binary.BigEndian.PutUint64(buf[14:22], n)
}

func parseHeader(data []byte) (magic uint16, m uint64, k uint32, n uint64, err error) {
	if len(data) < headerLen {
		return 0, 0, 0, 0, fmt.Errorf("bloom: truncated header: %d bytes", len(data))
	}
	magic = binary.BigEndian.Uint16(data[0:2])
	m = binary.BigEndian.Uint64(data[2:10])
	k = binary.BigEndian.Uint32(data[10:14])
	n = binary.BigEndian.Uint64(data[14:22])
	if m == 0 || k == 0 {
		return 0, 0, 0, 0, fmt.Errorf("%w: m=%d k=%d", ErrInvalidGeometry, m, k)
	}
	if m > maxWireM || k > maxWireK {
		return 0, 0, 0, 0, fmt.Errorf("%w: implausible wire geometry m=%d k=%d", ErrInvalidGeometry, m, k)
	}
	return magic, m, k, n, nil
}

// MarshalBinary encodes the filter in the wire format above.
func (f *Filter) MarshalBinary() ([]byte, error) {
	buf := make([]byte, headerLen+len(f.words)*8)
	putHeader(buf, f.wireMagic(), f.m, f.k, f.Count())
	for i, w := range f.words {
		binary.BigEndian.PutUint64(buf[headerLen+i*8:], w)
	}
	return buf, nil
}

// UnmarshalBinary decodes a filter previously encoded with MarshalBinary,
// accepting both the classic and the blocked magic and restoring the
// corresponding layout.
func (f *Filter) UnmarshalBinary(data []byte) error {
	magic, m, k, n, err := parseHeader(data)
	if err != nil {
		return err
	}
	var layout Layout
	switch magic {
	case magicFilter:
		layout = LayoutClassic
	case magicBlockedFilter:
		layout = LayoutBlocked
		if m%blockBits != 0 {
			return fmt.Errorf("%w: blocked filter m=%d not a multiple of %d", ErrInvalidGeometry, m, blockBits)
		}
	default:
		return fmt.Errorf("bloom: bad magic 0x%04x (want 0x%04x or 0x%04x)", magic, magicFilter, magicBlockedFilter)
	}
	// The word arithmetic stays in uint64: parseHeader capped m, so
	// neither the rounding nor the byte count can overflow.
	nw := int((m + wordBits - 1) / wordBits)
	if uint64(len(data)-headerLen) != uint64(nw)*8 {
		return fmt.Errorf("bloom: body length %d, want %d", len(data)-headerLen, nw*8)
	}
	words := make([]uint64, nw)
	for i := range words {
		words[i] = binary.BigEndian.Uint64(data[headerLen+i*8:])
	}
	f.m, f.k, f.layout, f.words = m, k, layout, words
	f.setCount(n)
	return nil
}

// MarshalBinary encodes the counting filter in the wire format above.
func (c *CountingFilter) MarshalBinary() ([]byte, error) {
	buf := make([]byte, headerLen+len(c.counters))
	putHeader(buf, magicCounting, c.m, c.k, c.n)
	copy(buf[headerLen:], c.counters)
	return buf, nil
}

// UnmarshalBinary decodes a counting filter previously encoded with
// MarshalBinary.
func (c *CountingFilter) UnmarshalBinary(data []byte) error {
	magic, m, k, n, err := parseHeader(data)
	if err != nil {
		return err
	}
	if magic != magicCounting {
		return fmt.Errorf("bloom: bad magic 0x%04x (want 0x%04x)", magic, magicCounting)
	}
	if uint64(len(data)-headerLen) != m {
		return fmt.Errorf("bloom: body length %d, want %d", len(data)-headerLen, m)
	}
	counters := make([]uint8, m)
	copy(counters, data[headerLen:])
	c.m, c.k, c.n, c.counters = m, k, n, counters
	return nil
}
