package bloom

import "fmt"

// counterMax is the saturation value of a counting-filter cell. Cells that
// reach it stop incrementing and are never decremented, trading a slightly
// higher false-positive rate for safety against counter underflow, the
// standard approach from Fan et al.'s Summary Cache.
const counterMax = ^uint8(0)

// CountingFilter is a Bloom filter with per-position counters, supporting
// deletion. G-HBA uses counting filters in the identification Bloom filter
// array (IDBFA) so that replica ownership can be revoked when a replica
// migrates between group members or an MDS departs (Section 2.4).
//
// CountingFilter is not safe for concurrent mutation.
type CountingFilter struct {
	m        uint64
	k        uint32
	n        uint64
	counters []uint8
}

// NewCounting creates a counting filter with m counters and k hash functions.
func NewCounting(m uint64, k uint32) (*CountingFilter, error) {
	if m == 0 || k == 0 {
		return nil, fmt.Errorf("%w: m=%d k=%d", ErrInvalidGeometry, m, k)
	}
	return &CountingFilter{m: m, k: k, counters: make([]uint8, m)}, nil
}

// NewCountingForCapacity sizes a counting filter for n items at the given
// bits-per-item ratio with the optimal hash count.
func NewCountingForCapacity(n uint64, bitsPerItem float64) (*CountingFilter, error) {
	if n == 0 || bitsPerItem <= 0 {
		return nil, fmt.Errorf("%w: n=%d bits/item=%f", ErrInvalidGeometry, n, bitsPerItem)
	}
	m := uint64(float64(n) * bitsPerItem)
	if m == 0 {
		m = 1
	}
	return NewCounting(m, OptimalK(bitsPerItem))
}

// M returns the number of counters.
func (c *CountingFilter) M() uint64 { return c.m }

// K returns the number of hash functions.
func (c *CountingFilter) K() uint32 { return c.k }

// Count returns the net number of items (adds minus removes).
func (c *CountingFilter) Count() uint64 { return c.n }

// Add inserts key, incrementing the k counters it maps to.
func (c *CountingFilter) Add(key []byte) {
	h1, h2 := hashPair(key)
	c.addPair(h1, h2)
}

// AddString inserts a string key without copying it to a byte slice.
func (c *CountingFilter) AddString(key string) {
	h1, h2 := hashPairString(key)
	c.addPair(h1, h2)
}

func (c *CountingFilter) addPair(h1, h2 uint64) {
	for i := uint32(0); i < c.k; i++ {
		idx := indexAt(h1, h2, i, c.m)
		if c.counters[idx] < counterMax {
			c.counters[idx]++
		}
	}
	c.n++
}

// Remove deletes one occurrence of key, decrementing its counters. Removing a
// key that was never added corrupts the filter (it may introduce false
// negatives for other keys); callers must pair removes with prior adds, which
// the IDBFA layer guarantees by construction.
func (c *CountingFilter) Remove(key []byte) {
	h1, h2 := hashPair(key)
	c.removePair(h1, h2)
}

// RemoveString deletes one occurrence of a string key.
func (c *CountingFilter) RemoveString(key string) {
	h1, h2 := hashPairString(key)
	c.removePair(h1, h2)
}

func (c *CountingFilter) removePair(h1, h2 uint64) {
	for i := uint32(0); i < c.k; i++ {
		idx := indexAt(h1, h2, i, c.m)
		if c.counters[idx] > 0 && c.counters[idx] < counterMax {
			c.counters[idx]--
		}
	}
	if c.n > 0 {
		c.n--
	}
}

// Contains reports whether key may be in the set.
func (c *CountingFilter) Contains(key []byte) bool {
	h1, h2 := hashPair(key)
	return c.containsPair(h1, h2)
}

// ContainsString reports whether a string key may be in the set.
func (c *CountingFilter) ContainsString(key string) bool {
	h1, h2 := hashPairString(key)
	return c.containsPair(h1, h2)
}

func (c *CountingFilter) containsPair(h1, h2 uint64) bool {
	for i := uint32(0); i < c.k; i++ {
		if c.counters[indexAt(h1, h2, i, c.m)] == 0 {
			return false
		}
	}
	return true
}

// Clear resets all counters.
func (c *CountingFilter) Clear() {
	for i := range c.counters {
		c.counters[i] = 0
	}
	c.n = 0
}

// Clone returns a deep copy.
func (c *CountingFilter) Clone() *CountingFilter {
	cc := make([]uint8, len(c.counters))
	copy(cc, c.counters)
	return &CountingFilter{m: c.m, k: c.k, n: c.n, counters: cc}
}

// ToFilter flattens the counting filter into a standard filter with the same
// geometry: a bit is set wherever the counter is non-zero. This is how an
// updated ID filter is serialized for multicast to the rest of a group.
func (c *CountingFilter) ToFilter() *Filter {
	f := &Filter{m: c.m, k: c.k, n: c.n, words: make([]uint64, (c.m+wordBits-1)/wordBits)}
	for i, v := range c.counters {
		if v > 0 {
			f.words[uint64(i)/wordBits] |= 1 << (uint64(i) % wordBits)
		}
	}
	return f
}

// SizeBytes returns the in-memory size of the counter array in bytes.
func (c *CountingFilter) SizeBytes() uint64 { return uint64(len(c.counters)) }
