package bloom

// Deterministic hashing shared by every filter in a deployment. All MDSs —
// whether simulated in one process or running as separate prototype daemons —
// must derive identical bit positions for the same key, so the hash is a
// fixed-seed FNV-1a pass followed by a SplitMix64 finalizer, combined with
// Kirsch–Mitzenmacher double hashing: index_i = (h1 + i·h2) mod m.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv1a computes the 64-bit FNV-1a hash of key.
func fnv1a(key []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return h
}

// fnv1aString computes the 64-bit FNV-1a hash of a string's bytes without
// converting it to a byte slice, so string-keyed probes never allocate. It
// returns exactly fnv1a([]byte(key)).
func fnv1aString(key string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return h
}

// splitmix64 is the finalizer from Vigna's SplitMix64 generator; it is a
// strong 64-bit mixer used to derive the second hash from the first.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashPair returns the two base hashes for double hashing. h2 is forced odd
// so that for power-of-two m the stride is coprime with the table size.
func hashPair(key []byte) (h1, h2 uint64) {
	h1 = fnv1a(key)
	h2 = splitmix64(h1) | 1
	return h1, h2
}

// hashPairString is hashPair for string keys, allocation-free.
func hashPairString(key string) (h1, h2 uint64) {
	h1 = fnv1aString(key)
	h2 = splitmix64(h1) | 1
	return h1, h2
}

// indexAt returns the i-th probe position for the (h1, h2) pair in a table of
// m bits.
func indexAt(h1, h2 uint64, i uint32, m uint64) uint64 {
	return (h1 + uint64(i)*h2) % m
}

// blockedIndexAt returns the i-th probe position for the (h1, h2) pair in a
// cache-line-blocked table of m bits (m a multiple of blockBits): h1 selects
// one 512-bit block and every probe lands inside it, so a whole k-probe query
// touches a single cache line. Within the block the probes walk the same
// Kirsch–Mitzenmacher sequence reduced mod 512 — h2 is odd, hence coprime
// with the block size, so the k offsets are distinct for every k ≤ 512.
func blockedIndexAt(h1, h2 uint64, i uint32, m uint64) uint64 {
	base := (h1 % (m / blockBits)) * blockBits
	off := (h1 + uint64(i)*h2) & (blockBits - 1)
	return base + off
}
