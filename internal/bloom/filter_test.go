package bloom

import (
	"fmt"
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, m uint64, k uint32) *Filter {
	t.Helper()
	f, err := New(m, k)
	if err != nil {
		t.Fatalf("New(%d, %d): %v", m, k, err)
	}
	return f
}

func TestNewRejectsInvalidGeometry(t *testing.T) {
	cases := []struct {
		m uint64
		k uint32
	}{{0, 3}, {100, 0}, {0, 0}}
	for _, c := range cases {
		if _, err := New(c.m, c.k); err == nil {
			t.Errorf("New(%d, %d) succeeded, want error", c.m, c.k)
		}
	}
}

func TestNewForCapacityRejectsInvalid(t *testing.T) {
	if _, err := NewForCapacity(0, 8); err == nil {
		t.Error("NewForCapacity(0, 8) succeeded, want error")
	}
	if _, err := NewForCapacity(10, 0); err == nil {
		t.Error("NewForCapacity(10, 0) succeeded, want error")
	}
	if _, err := NewForCapacity(10, -4); err == nil {
		t.Error("NewForCapacity(10, -4) succeeded, want error")
	}
}

func TestNewForCapacityGeometry(t *testing.T) {
	f, err := NewForCapacity(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if f.M() != 8000 {
		t.Errorf("M = %d, want 8000", f.M())
	}
	// k = 8·ln2 ≈ 5.545 → 6
	if f.K() != 6 {
		t.Errorf("K = %d, want 6", f.K())
	}
}

func TestAddContains(t *testing.T) {
	f := mustNew(t, 1<<14, 6)
	keys := []string{"", "/", "/usr/lib/file.so", "a", "ab", "abc", "/home/user/.bashrc"}
	for _, k := range keys {
		f.AddString(k)
	}
	for _, k := range keys {
		if !f.ContainsString(k) {
			t.Errorf("Contains(%q) = false after Add", k)
		}
	}
}

func TestNoFalseNegativesProperty(t *testing.T) {
	f := mustNew(t, 1<<16, 7)
	err := quick.Check(func(key []byte) bool {
		f.Add(key)
		return f.Contains(key)
	}, &quick.Config{MaxCount: 2000})
	if err != nil {
		t.Errorf("false negative found: %v", err)
	}
}

func TestEmptyFilterContainsNothing(t *testing.T) {
	f := mustNew(t, 1<<16, 7)
	for i := 0; i < 1000; i++ {
		if f.ContainsString("key" + strconv.Itoa(i)) {
			t.Fatalf("empty filter claims membership of key%d", i)
		}
	}
}

func TestFalsePositiveRateNearTheory(t *testing.T) {
	// 8 bits/item, optimal k → f0 ≈ 0.6185^8 ≈ 2.1%.
	const n = 20000
	f, err := NewForCapacity(n, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		f.AddString("member-" + strconv.Itoa(i))
	}
	fp := 0
	const probes = 50000
	for i := 0; i < probes; i++ {
		if f.ContainsString("nonmember-" + strconv.Itoa(i)) {
			fp++
		}
	}
	got := float64(fp) / probes
	want := OptimalFalsePositiveRate(8)
	if got > want*2.5 {
		t.Errorf("observed FPR %.4f far above theoretical %.4f", got, want)
	}
}

func TestClear(t *testing.T) {
	f := mustNew(t, 1024, 4)
	f.AddString("x")
	if f.PopCount() == 0 {
		t.Fatal("PopCount = 0 after Add")
	}
	f.Clear()
	if f.PopCount() != 0 || f.Count() != 0 {
		t.Errorf("after Clear: popcount=%d count=%d, want 0, 0", f.PopCount(), f.Count())
	}
	if f.ContainsString("x") {
		t.Error("cleared filter still contains key")
	}
}

func TestCloneIndependence(t *testing.T) {
	f := mustNew(t, 1024, 4)
	f.AddString("a")
	g := f.Clone()
	if !f.Equal(g) {
		t.Fatal("clone not equal to original")
	}
	g.AddString("b")
	if f.Equal(g) && f.PopCount() == g.PopCount() {
		t.Error("mutation of clone affected original")
	}
	if !f.ContainsString("a") {
		t.Error("original lost key after clone mutation")
	}
}

func TestEqualDifferentGeometry(t *testing.T) {
	a := mustNew(t, 1024, 4)
	b := mustNew(t, 1024, 5)
	c := mustNew(t, 2048, 4)
	if a.Equal(b) {
		t.Error("filters with different k compare equal")
	}
	if a.Equal(c) {
		t.Error("filters with different m compare equal")
	}
}

func TestFillRatioAndSize(t *testing.T) {
	f := mustNew(t, 128, 2)
	if f.FillRatio() != 0 {
		t.Errorf("empty FillRatio = %f", f.FillRatio())
	}
	if f.SizeBytes() != 16 {
		t.Errorf("SizeBytes = %d, want 16", f.SizeBytes())
	}
	f.AddString("k")
	if f.FillRatio() <= 0 || f.FillRatio() > float64(f.K())/128 {
		t.Errorf("FillRatio = %f out of expected range", f.FillRatio())
	}
}

func TestUnionProperty1(t *testing.T) {
	// BF(A) ∪ BF(B) must contain every member of A and of B.
	a := mustNew(t, 1<<14, 6)
	b := mustNew(t, 1<<14, 6)
	var aKeys, bKeys []string
	for i := 0; i < 500; i++ {
		ka, kb := "a"+strconv.Itoa(i), "b"+strconv.Itoa(i)
		a.AddString(ka)
		b.AddString(kb)
		aKeys = append(aKeys, ka)
		bKeys = append(bKeys, kb)
	}
	u := a.Clone()
	if err := u.Union(b); err != nil {
		t.Fatal(err)
	}
	for _, k := range append(aKeys, bKeys...) {
		if !u.ContainsString(k) {
			t.Errorf("union missing %q", k)
		}
	}
	// Union bit vector must equal OR of inputs.
	for i := range u.words {
		if u.words[i] != a.words[i]|b.words[i] {
			t.Fatalf("word %d: union != OR", i)
		}
	}
}

func TestIntersectProperty2(t *testing.T) {
	// AND of bit vectors is a superset of BF(A∩B): members of both sets
	// must remain positive.
	a := mustNew(t, 1<<14, 6)
	b := mustNew(t, 1<<14, 6)
	for i := 0; i < 300; i++ {
		a.AddString("common" + strconv.Itoa(i))
		b.AddString("common" + strconv.Itoa(i))
		a.AddString("onlyA" + strconv.Itoa(i))
		b.AddString("onlyB" + strconv.Itoa(i))
	}
	x := a.Clone()
	if err := x.Intersect(b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if !x.ContainsString("common" + strconv.Itoa(i)) {
			t.Errorf("intersection lost common member %d", i)
		}
	}
	// Direct filter over A∩B has no more bits than the AND approximation.
	direct := mustNew(t, 1<<14, 6)
	for i := 0; i < 300; i++ {
		direct.AddString("common" + strconv.Itoa(i))
	}
	if direct.PopCount() > x.PopCount() {
		t.Errorf("direct intersection filter has more bits (%d) than AND (%d)",
			direct.PopCount(), x.PopCount())
	}
}

func TestXorOfIdenticalSetsIsZero(t *testing.T) {
	a := mustNew(t, 1<<12, 5)
	b := mustNew(t, 1<<12, 5)
	for i := 0; i < 200; i++ {
		a.AddString("k" + strconv.Itoa(i))
		b.AddString("k" + strconv.Itoa(i))
	}
	d, err := a.XorBits(b)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("XorBits of identical sets = %d, want 0", d)
	}
	x, err := a.Xor(b)
	if err != nil {
		t.Fatal(err)
	}
	if x.PopCount() != 0 {
		t.Errorf("Xor of identical sets has %d set bits", x.PopCount())
	}
}

func TestXorProperty3(t *testing.T) {
	// BF(A⊕B) = BF(A−B) ∪ BF(B−A) when bits/hashes are shared and the
	// symmetric-difference elements don't collide: verify on disjoint sets.
	a := mustNew(t, 1<<16, 6)
	b := mustNew(t, 1<<16, 6)
	shared := mustNew(t, 1<<16, 6)
	for i := 0; i < 100; i++ {
		k := "shared" + strconv.Itoa(i)
		a.AddString(k)
		b.AddString(k)
		shared.AddString(k)
	}
	onlyA := mustNew(t, 1<<16, 6)
	for i := 0; i < 50; i++ {
		k := "onlyA" + strconv.Itoa(i)
		a.AddString(k)
		onlyA.AddString(k)
	}
	x, err := a.Xor(b)
	if err != nil {
		t.Fatal(err)
	}
	// Bits set only by A's unique members and not by shared ones survive XOR.
	surviving := 0
	for i := range onlyA.words {
		surviving += popcntWord(onlyA.words[i] &^ shared.words[i] & x.words[i])
		if onlyA.words[i]&^shared.words[i] != onlyA.words[i]&^shared.words[i]&x.words[i] {
			t.Fatalf("word %d: XOR lost a bit unique to A−B", i)
		}
	}
	if surviving == 0 {
		t.Error("XOR kept no bits of A−B")
	}
}

func popcntWord(w uint64) int {
	n := 0
	for ; w != 0; w &= w - 1 {
		n++
	}
	return n
}

func TestGeometryMismatchErrors(t *testing.T) {
	a := mustNew(t, 1024, 4)
	b := mustNew(t, 2048, 4)
	if err := a.Union(b); err == nil {
		t.Error("Union across geometries succeeded")
	}
	if err := a.Intersect(b); err == nil {
		t.Error("Intersect across geometries succeeded")
	}
	if _, err := a.Xor(b); err == nil {
		t.Error("Xor across geometries succeeded")
	}
	if _, err := a.XorBits(b); err == nil {
		t.Error("XorBits across geometries succeeded")
	}
	if err := a.CopyFrom(b); err == nil {
		t.Error("CopyFrom across geometries succeeded")
	}
}

func TestCopyFrom(t *testing.T) {
	a := mustNew(t, 1024, 4)
	b := mustNew(t, 1024, 4)
	b.AddString("x")
	b.AddString("y")
	if err := a.CopyFrom(b); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) || a.Count() != b.Count() {
		t.Error("CopyFrom did not replicate state")
	}
}

func TestUnionCommutativeProperty(t *testing.T) {
	err := quick.Check(func(xs, ys []string) bool {
		a1 := mustNewQuick()
		b1 := mustNewQuick()
		for _, x := range xs {
			a1.AddString(x)
		}
		for _, y := range ys {
			b1.AddString(y)
		}
		u1 := a1.Clone()
		if err := u1.Union(b1); err != nil {
			return false
		}
		u2 := b1.Clone()
		if err := u2.Union(a1); err != nil {
			return false
		}
		return u1.Equal(u2)
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Errorf("union not commutative: %v", err)
	}
}

func mustNewQuick() *Filter {
	f, err := New(4096, 5)
	if err != nil {
		panic(err)
	}
	return f
}

func TestHashDeterminism(t *testing.T) {
	// Two filters built independently over the same keys must be bitwise
	// identical — the property replica distribution depends on.
	a := mustNew(t, 1<<13, 6)
	b := mustNew(t, 1<<13, 6)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("/fs/dir%d/file%d", i%37, i)
		a.AddString(k)
		b.AddString(k)
	}
	if !a.Equal(b) {
		t.Error("same insertion sequence produced different bit vectors")
	}
}

func TestHashPairStrideOdd(t *testing.T) {
	err := quick.Check(func(key []byte) bool {
		_, h2 := hashPair(key)
		return h2%2 == 1
	}, &quick.Config{MaxCount: 500})
	if err != nil {
		t.Errorf("h2 not always odd: %v", err)
	}
}

func TestEstimatedFPRMonotonic(t *testing.T) {
	f := mustNew(t, 4096, 5)
	prev := f.EstimatedFPR()
	for i := 0; i < 2000; i += 100 {
		for j := 0; j < 100; j++ {
			f.AddString(strconv.Itoa(i + j))
		}
		cur := f.EstimatedFPR()
		if cur < prev {
			t.Fatalf("EstimatedFPR decreased after inserts: %f -> %f", prev, cur)
		}
		prev = cur
	}
	if prev <= 0 || prev > 1 {
		t.Errorf("EstimatedFPR = %f out of (0,1]", prev)
	}
}

func TestOptimalK(t *testing.T) {
	cases := []struct {
		ratio float64
		want  uint32
	}{
		{8, 6},   // 5.545 → 6
		{16, 11}, // 11.09 → 11
		{1, 1},   // 0.69 → 1
		{0.1, 1}, // rounds to 0, clamped to 1
	}
	for _, c := range cases {
		if got := OptimalK(c.ratio); got != c.want {
			t.Errorf("OptimalK(%v) = %d, want %d", c.ratio, got, c.want)
		}
	}
}

func TestFalsePositiveRateFormula(t *testing.T) {
	if got := FalsePositiveRate(1000, 0, 4); got != 0 {
		t.Errorf("FPR with n=0 = %f, want 0", got)
	}
	if got := FalsePositiveRate(0, 10, 4); got != 1 {
		t.Errorf("FPR with m=0 = %f, want 1", got)
	}
	// Known value: m/n=8, k=6 → (1−e^(−6/8))^6 ≈ 0.0216.
	got := FalsePositiveRate(8000, 1000, 6)
	if math.Abs(got-0.0216) > 0.002 {
		t.Errorf("FPR(8000,1000,6) = %f, want ≈0.0216", got)
	}
}

func TestOptimalFalsePositiveRate(t *testing.T) {
	if got := OptimalFalsePositiveRate(0); got != 1 {
		t.Errorf("f0 at ratio 0 = %f, want 1", got)
	}
	got := OptimalFalsePositiveRate(8)
	want := math.Pow(0.6185, 8)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("f0(8) = %g, want %g", got, want)
	}
	if OptimalFalsePositiveRate(16) >= got {
		t.Error("f0 not decreasing in bits/item")
	}
}

func TestSegmentFalsePositiveEq1(t *testing.T) {
	if got := SegmentFalsePositive(0, 8); got != 0 {
		t.Errorf("Eq1 with θ=0 = %f, want 0", got)
	}
	// θ=1 reduces to f0.
	if got, want := SegmentFalsePositive(1, 8), OptimalFalsePositiveRate(8); math.Abs(got-want) > 1e-12 {
		t.Errorf("Eq1 θ=1 = %g, want f0 = %g", got, want)
	}
	// Hand-computed: θ=10, ratio 8: 10·f0·(1−f0)^9.
	f0 := math.Pow(0.6185, 8)
	want := 10 * f0 * math.Pow(1-f0, 9)
	if got := SegmentFalsePositive(10, 8); math.Abs(got-want) > 1e-12 {
		t.Errorf("Eq1 θ=10 = %g, want %g", got, want)
	}
}

func TestUniqueHitProbability(t *testing.T) {
	if got := UniqueHitProbability(0, 0.1); got != 0 {
		t.Errorf("UniqueHitProbability(0) = %f, want 0", got)
	}
	if got := UniqueHitProbability(1, 0.5); got != 1 {
		t.Errorf("UniqueHitProbability(1) = %f, want 1 (no other filters)", got)
	}
	got := UniqueHitProbability(11, 0.01)
	want := math.Pow(0.99, 10)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("UniqueHitProbability(11, 0.01) = %g, want %g", got, want)
	}
}
