package bloom

import "sync/atomic"

// Digest is the hash-once currency of the query path: the two
// Kirsch–Mitzenmacher base hashes of one key, computed a single time per
// lookup, plus the k probe positions materialized once per filter geometry
// and reused across every replica sharing that geometry. Because a G-HBA
// deployment mandates one (m, k, layout) for all its filters, a whole L1→L4
// lookup — dozens of replica probes — reduces to one key hash, one set of k
// position derivations, and k word loads per filter (one cache line per
// filter under LayoutBlocked).
//
// A Digest is mutable scratch state (the position cache re-materializes when
// the probed geometry changes) and must not be shared between goroutines;
// each lookup computes its own. The zero value is not meaningful; construct
// digests with NewDigest or NewDigestString.
type Digest struct {
	h1, h2 uint64

	// Cached probe positions for the most recently probed geometry. A
	// single slot suffices: lookups probe same-geometry filter runs (all
	// L1 generations, then all L2/L3 replicas), so switches are rare. The
	// layout participates in the cache key — classic and blocked filters
	// of equal (m, k) map the same key to different positions.
	m      uint64
	k      uint32
	layout Layout
	pos    [digestMaxK]uint64
}

// digestMaxK bounds the cached probe positions. k = (m/n)·ln 2 stays below
// 12 for every ratio the paper evaluates; geometries beyond the bound still
// work, falling back to per-probe index derivation.
const digestMaxK = 32

// NewDigest hashes a byte-string key into a digest.
func NewDigest(key []byte) Digest {
	h1, h2 := hashPair(key)
	return Digest{h1: h1, h2: h2}
}

// NewDigestString hashes a string key into a digest without copying the key
// to a byte slice; it produces bit-for-bit the same digest as NewDigest on
// the key's bytes.
func NewDigestString(key string) Digest {
	h1, h2 := hashPairString(key)
	return Digest{h1: h1, h2: h2}
}

// positions returns the k probe positions for geometry (m, k, layout),
// materializing and caching them on first use. Returns nil when k exceeds
// the cache bound; callers then derive indices per probe.
//
//ghbavet:hotpath
func (d *Digest) positions(m uint64, k uint32, layout Layout) []uint64 {
	if k > digestMaxK {
		return nil
	}
	if d.m != m || d.k != k || d.layout != layout {
		if layout == LayoutBlocked {
			for i := uint32(0); i < k; i++ {
				d.pos[i] = blockedIndexAt(d.h1, d.h2, i, m)
			}
		} else {
			for i := uint32(0); i < k; i++ {
				d.pos[i] = indexAt(d.h1, d.h2, i, m)
			}
		}
		d.m, d.k, d.layout = m, k, layout
	}
	return d.pos[:k]
}

// ContainsDigest reports whether the digested key may be in the set. It is
// bit-for-bit equivalent to Contains on the same key: k word loads against
// the cached probe positions, no hashing, no allocation. Like Contains it is
// safe to call lock-free concurrently with a serialized writer.
//
//ghbavet:hotpath
func (f *Filter) ContainsDigest(d *Digest) bool {
	if pos := d.positions(f.m, f.k, f.layout); pos != nil {
		for _, bit := range pos {
			if atomic.LoadUint64(&f.words[bit/wordBits])&(1<<(bit%wordBits)) == 0 {
				return false
			}
		}
		return true
	}
	return f.containsPair(d.h1, d.h2)
}

// AddDigest inserts the digested key, equivalent to Add on the same key.
//
//ghbavet:hotpath
func (f *Filter) AddDigest(d *Digest) {
	if pos := d.positions(f.m, f.k, f.layout); pos != nil {
		for _, bit := range pos {
			atomic.OrUint64(&f.words[bit/wordBits], 1<<(bit%wordBits))
		}
		atomic.AddUint64(&f.n, 1)
		return
	}
	f.addPair(d.h1, d.h2)
}

// ContainsDigest reports whether the digested key may be in the counting
// filter, equivalent to Contains on the same key.
func (c *CountingFilter) ContainsDigest(d *Digest) bool {
	if pos := d.positions(c.m, c.k, LayoutClassic); pos != nil {
		for _, idx := range pos {
			if c.counters[idx] == 0 {
				return false
			}
		}
		return true
	}
	return c.containsPair(d.h1, d.h2)
}

// AddDigest inserts the digested key, equivalent to Add on the same key.
func (c *CountingFilter) AddDigest(d *Digest) {
	if pos := d.positions(c.m, c.k, LayoutClassic); pos != nil {
		for _, idx := range pos {
			if c.counters[idx] < counterMax {
				c.counters[idx]++
			}
		}
		c.n++
		return
	}
	c.addPair(d.h1, d.h2)
}

// RemoveDigest deletes one occurrence of the digested key, equivalent to
// Remove on the same key (with the same corruption caveat).
func (c *CountingFilter) RemoveDigest(d *Digest) {
	if pos := d.positions(c.m, c.k, LayoutClassic); pos != nil {
		for _, idx := range pos {
			if c.counters[idx] > 0 && c.counters[idx] < counterMax {
				c.counters[idx]--
			}
		}
		if c.n > 0 {
			c.n--
		}
		return
	}
	c.removePair(d.h1, d.h2)
}
