package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func rec(op uint8, path string) Record { return Record{Op: op, Path: path} }

func TestAppendReopenReplay(t *testing.T) {
	dir := t.TempDir()
	l, r := mustOpen(t, dir, Options{})
	if r.Snapshot != nil || len(r.Records) != 0 || r.Torn {
		t.Fatalf("fresh dir recovered non-empty state: %+v", r)
	}
	want := []Record{
		rec(OpCreate, "/a"),
		rec(OpCreate, "/b/c"),
		rec(OpDelete, "/a"),
		rec(OpCreate, ""),
	}
	for _, w := range want[:2] {
		if err := l.Append(w); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	// Batch append for the rest.
	if err := l.Append(want[2], want[3]); err != nil {
		t.Fatalf("Append batch: %v", err)
	}
	if got := l.RecordsSinceSnapshot(); got != 4 {
		t.Fatalf("RecordsSinceSnapshot = %d, want 4", got)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, r2 := mustOpen(t, dir, Options{})
	defer l2.Close()
	if !reflect.DeepEqual(r2.Records, want) {
		t.Fatalf("replay got %v, want %v", r2.Records, want)
	}
	if r2.Torn || r2.Snapshot != nil {
		t.Fatalf("unexpected recovery flags: %+v", r2)
	}
	// Appends after reopen extend the same history.
	if err := l2.Append(rec(OpDelete, "/b/c")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	l2.Close()
	_, r3 := mustOpen(t, dir, Options{})
	if len(r3.Records) != 5 || r3.Records[4].Path != "/b/c" {
		t.Fatalf("post-reopen append lost: %v", r3.Records)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := l.Append(rec(OpCreate, fmt.Sprintf("/f%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	state := []byte("state-after-ten")
	if err := l.Snapshot(state); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if got := l.RecordsSinceSnapshot(); got != 0 {
		t.Fatalf("RecordsSinceSnapshot after snapshot = %d", got)
	}
	// Tail records after the snapshot.
	if err := l.Append(rec(OpDelete, "/f3")); err != nil {
		t.Fatalf("Append tail: %v", err)
	}
	l.Close()

	l2, r := mustOpen(t, dir, Options{})
	defer l2.Close()
	if string(r.Snapshot) != string(state) {
		t.Fatalf("snapshot payload = %q, want %q", r.Snapshot, state)
	}
	if r.SnapshotSeq != 1 {
		t.Fatalf("SnapshotSeq = %d, want 1", r.SnapshotSeq)
	}
	wantTail := []Record{rec(OpDelete, "/f3")}
	if !reflect.DeepEqual(r.Records, wantTail) {
		t.Fatalf("tail = %v, want %v", r.Records, wantTail)
	}
	// The superseded segment must be gone.
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !os.IsNotExist(err) {
		t.Fatalf("segment 1 not purged: %v", err)
	}
}

func TestRepeatedSnapshotsPurgeOldOnes(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := l.Append(rec(OpCreate, fmt.Sprintf("/round%d", i))); err != nil {
			t.Fatal(err)
		}
		if err := l.Snapshot([]byte(fmt.Sprintf("state%d", i))); err != nil {
			t.Fatalf("Snapshot %d: %v", i, err)
		}
	}
	l.Close()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var snaps, segs int
	for _, e := range entries {
		if _, ok := parseSeq(e.Name(), "snap-", ".snap"); ok {
			snaps++
		}
		if _, ok := parseSeq(e.Name(), "wal-", ".log"); ok {
			segs++
		}
	}
	if snaps != 1 || segs != 1 {
		t.Fatalf("after 5 snapshots: %d snaps, %d segments (want 1, 1)", snaps, segs)
	}
	_, r := mustOpen(t, dir, Options{})
	if string(r.Snapshot) != "state4" || len(r.Records) != 0 {
		t.Fatalf("recovered %q + %d records", r.Snapshot, len(r.Records))
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			dir := t.TempDir()
			l, _ := mustOpen(t, dir, Options{Sync: pol, SyncEvery: time.Millisecond})
			for i := 0; i < 20; i++ {
				if err := l.Append(rec(OpCreate, fmt.Sprintf("/p%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			// Abandon simulates SIGKILL: no flush on the way out. Writes
			// still reached the kernel, so an in-process reopen sees them
			// under every policy.
			if err := l.Abandon(); err != nil {
				t.Fatal(err)
			}
			_, r := mustOpen(t, dir, Options{})
			if len(r.Records) != 20 {
				t.Fatalf("policy %v: recovered %d records, want 20", pol, len(r.Records))
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
		err  bool
	}{
		{"always", SyncAlways, false},
		{"", SyncAlways, false},
		{"interval", SyncInterval, false},
		{"never", SyncNever, false},
		{"sometimes", 0, true},
	} {
		got, err := ParseSyncPolicy(tc.in)
		if (err != nil) != tc.err || got != tc.want {
			t.Errorf("ParseSyncPolicy(%q) = (%v, %v), want (%v, err=%v)", tc.in, got, err, tc.want, tc.err)
		}
	}
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNever} {
		back, err := ParseSyncPolicy(pol.String())
		if err != nil || back != pol {
			t.Errorf("policy %v did not round-trip through String", pol)
		}
	}
}

func TestAppendAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	l.Close()
	if err := l.Append(rec(OpCreate, "/x")); err == nil {
		t.Fatal("Append after Close succeeded")
	}
	if err := l.Snapshot(nil); err == nil {
		t.Fatal("Snapshot after Close succeeded")
	}
}

func TestBadRecordRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	defer l.Close()
	if err := l.Append(Record{Op: 99, Path: "/x"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// seedSegment builds a directory whose single segment holds the given
// records and returns the segment path plus the raw bytes.
func seedSegment(t *testing.T, records []Record) (dir, seg string, data []byte) {
	t.Helper()
	dir = t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if err := l.Append(records...); err != nil {
		t.Fatal(err)
	}
	l.Close()
	seg = filepath.Join(dir, segmentName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	return dir, seg, data
}

// TestTortureTruncate truncates the segment at every byte offset and
// asserts recovery replays exactly the records whose frames survived
// whole — never a partial or corrupt record, never an error.
func TestTortureTruncate(t *testing.T) {
	records := []Record{
		rec(OpCreate, "/alpha"),
		rec(OpDelete, "/alpha"),
		rec(OpCreate, "/beta/gamma"),
	}
	_, _, data := seedSegment(t, records)

	// Frame boundaries: prefix lengths at which exactly k records survive.
	bounds := []int{0}
	off := 0
	for _, r := range records {
		frame, _ := encodeRecord(r)
		off += len(frame)
		bounds = append(bounds, off)
	}
	wantAt := func(n int) []Record {
		k := 0
		for k+1 < len(bounds) && bounds[k+1] <= n {
			k++
		}
		return records[:k]
	}

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, r, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: Open failed: %v", cut, err)
		}
		want := wantAt(cut)
		if len(r.Records) != len(want) || (len(want) > 0 && !reflect.DeepEqual(r.Records, want)) {
			t.Fatalf("cut=%d: got %v, want %v", cut, r.Records, want)
		}
		wantTorn := cut != 0 && cut != bounds[len(bounds)-1] &&
			func() bool { // torn iff cut is not exactly on a frame boundary
				for _, b := range bounds {
					if b == cut {
						return false
					}
				}
				return true
			}()
		if r.Torn != wantTorn {
			t.Fatalf("cut=%d: Torn=%v, want %v", cut, r.Torn, wantTorn)
		}
		// The log must keep working after tail truncation.
		if err := l.Append(rec(OpCreate, "/after")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		l.Close()
		_, r2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("cut=%d: second Open: %v", cut, err)
		}
		if len(r2.Records) != len(want)+1 || r2.Records[len(want)].Path != "/after" {
			t.Fatalf("cut=%d: post-truncate append not replayed: %v", cut, r2.Records)
		}
	}
}

// TestTortureBitFlip flips every bit of the segment and asserts recovery
// never yields a record that was not appended: either the CRC catches the
// flip (shorter replay, torn tail) or the flip landed in a frame that
// still decodes — which can only happen if the flip produced a colliding
// CRC, which Castagnoli makes impossible for single-bit flips.
func TestTortureBitFlip(t *testing.T) {
	records := []Record{
		rec(OpCreate, "/alpha"),
		rec(OpDelete, "/alpha"),
		rec(OpCreate, "/beta/gamma"),
	}
	_, _, data := seedSegment(t, records)

	for pos := 0; pos < len(data); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 1 << bit
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segmentName(1)), mut, 0o644); err != nil {
				t.Fatal(err)
			}
			_, r, err := Open(dir, Options{})
			if err != nil {
				// A flip in a length field can masquerade as a huge frame;
				// that reads as a torn tail, not an error. No flip should
				// fail Open for a single-segment directory.
				t.Fatalf("pos=%d bit=%d: Open failed: %v", pos, bit, err)
			}
			// Every replayed record must be a strict prefix of the original
			// history — a flipped record must never survive.
			if len(r.Records) > len(records) {
				t.Fatalf("pos=%d bit=%d: replayed %d records from a %d-record log", pos, bit, len(r.Records), len(records))
			}
			for i, got := range r.Records {
				if got != records[i] {
					t.Fatalf("pos=%d bit=%d: record %d corrupted to %+v", pos, bit, i, got)
				}
			}
			if len(r.Records) < len(records) && !r.Torn {
				t.Fatalf("pos=%d bit=%d: lost records without Torn flag", pos, bit)
			}
		}
	}
}

// TestSnapshotCorruption covers the fail-loud side: damage to the newest
// snapshot must refuse recovery, because older snapshots were purged and
// silently starting empty would resurrect deleted files.
func TestSnapshotCorruption(t *testing.T) {
	build := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		l, _ := mustOpen(t, dir, Options{})
		if err := l.Append(rec(OpCreate, "/a")); err != nil {
			t.Fatal(err)
		}
		if err := l.Snapshot([]byte("good-state")); err != nil {
			t.Fatal(err)
		}
		l.Close()
		return dir, filepath.Join(dir, snapshotName(1))
	}

	t.Run("bitflip", func(t *testing.T) {
		dir, snap := build(t)
		data, err := os.ReadFile(snap)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x40
		if err := os.WriteFile(snap, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("corrupt snapshot: Open = %v, want ErrCorrupt", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		dir, snap := build(t)
		if err := os.Truncate(snap, 10); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated snapshot: Open = %v, want ErrCorrupt", err)
		}
	})
}

// TestInteriorCorruptionFailsLoudly pins the crash-window analysis: every
// non-final segment was fsynced whole before its successor existed, so a
// torn interior segment can only mean real corruption — recovery must
// refuse, not silently skip records.
func TestInteriorCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if err := l.Append(rec(OpCreate, "/one")); err != nil {
		t.Fatal(err)
	}
	if err := l.Snapshot([]byte("s1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(OpCreate, "/two")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Build a second segment after seg 2 by hand so seg 2 becomes interior.
	seg3 := filepath.Join(dir, segmentName(3))
	frame, _ := encodeRecord(rec(OpCreate, "/three"))
	if err := os.WriteFile(seg3, frame, 0o644); err != nil {
		t.Fatal(err)
	}
	// Remove the snapshot so both segments replay... no: snapshot covers
	// seg 1 only, segments 2 and 3 both replay. Corrupt seg 2's tail.
	seg2 := filepath.Join(dir, segmentName(2))
	data, err := os.ReadFile(seg2)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg2, int64(len(data)-1)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("interior torn segment: Open = %v, want ErrCorrupt", err)
	}
}

func TestSegmentGapFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := mustOpen(t, dir, Options{})
	if err := l.Append(rec(OpCreate, "/one")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Fabricate segment 3 with no segment 2.
	frame, _ := encodeRecord(rec(OpCreate, "/skip"))
	if err := os.WriteFile(filepath.Join(dir, segmentName(3)), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("segment gap: Open = %v, want ErrCorrupt", err)
	}
}

// TestSnapshotCrashPoints simulates a crash between every pair of steps in
// the Snapshot sequence by reconstructing the directory state each crash
// would leave, and asserts Open recovers a consistent history from each.
func TestSnapshotCrashPoints(t *testing.T) {
	// Full history: 2 records, snapshot("S"), 1 record.
	r1, r2, r3 := rec(OpCreate, "/a"), rec(OpCreate, "/b"), rec(OpDelete, "/a")
	f1, _ := encodeRecord(r1)
	f2, _ := encodeRecord(r2)
	f3, _ := encodeRecord(r3)
	seg1 := append(append([]byte{}, f1...), f2...)

	snapFrame := func(seq uint64, state []byte) []byte {
		payload := make([]byte, 8+len(state))
		for i := 0; i < 8; i++ {
			payload[7-i] = byte(seq >> (8 * i))
		}
		copy(payload[8:], state)
		fr := make([]byte, 8+len(payload))
		fr[0] = byte(len(payload) >> 24)
		fr[1] = byte(len(payload) >> 16)
		fr[2] = byte(len(payload) >> 8)
		fr[3] = byte(len(payload))
		c := crc32Checksum(payload)
		fr[4], fr[5], fr[6], fr[7] = byte(c>>24), byte(c>>16), byte(c>>8), byte(c)
		copy(fr[8:], payload)
		return fr
	}

	type state struct {
		name  string
		files map[string][]byte
		// wantSnap is the expected recovered snapshot payload ("" = none);
		// wantRecords the expected replay tail.
		wantSnap    string
		wantRecords []Record
	}
	states := []state{
		{
			// Crash after step 1 (segment fsynced, nothing else): plain log.
			name:        "before-next-segment",
			files:       map[string][]byte{segmentName(1): seg1},
			wantRecords: []Record{r1, r2},
		},
		{
			// Crash after step 2: empty next segment exists, no snapshot.
			name:        "next-segment-no-snapshot",
			files:       map[string][]byte{segmentName(1): seg1, segmentName(2): {}},
			wantRecords: []Record{r1, r2},
		},
		{
			// Crash mid-step 3: .tmp written but never renamed.
			name: "tmp-not-renamed",
			files: map[string][]byte{
				segmentName(1):           seg1,
				segmentName(2):           {},
				snapshotName(1) + ".tmp": snapFrame(1, []byte("S")),
			},
			wantRecords: []Record{r1, r2},
		},
		{
			// Crash after rename, before purge: both snapshot and old
			// segment exist — snapshot wins, old segment ignored.
			name: "renamed-not-purged",
			files: map[string][]byte{
				segmentName(1):  seg1,
				segmentName(2):  f3,
				snapshotName(1): snapFrame(1, []byte("S")),
			},
			wantSnap:    "S",
			wantRecords: []Record{r3},
		},
		{
			// Clean completion.
			name: "complete",
			files: map[string][]byte{
				segmentName(2):  f3,
				snapshotName(1): snapFrame(1, []byte("S")),
			},
			wantSnap:    "S",
			wantRecords: []Record{r3},
		},
	}

	for _, st := range states {
		t.Run(st.name, func(t *testing.T) {
			dir := t.TempDir()
			for name, data := range st.files {
				if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			l, r, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer l.Close()
			if string(r.Snapshot) != st.wantSnap {
				t.Fatalf("snapshot = %q, want %q", r.Snapshot, st.wantSnap)
			}
			want := st.wantRecords
			if len(r.Records) != len(want) || (len(want) > 0 && !reflect.DeepEqual(r.Records, want)) {
				t.Fatalf("records = %v, want %v", r.Records, want)
			}
			// Whatever state we crashed in, the reopened log must accept a
			// fresh append and a fresh snapshot.
			if err := l.Append(rec(OpCreate, "/recovered")); err != nil {
				t.Fatalf("append after crash recovery: %v", err)
			}
			if err := l.Snapshot([]byte("S2")); err != nil {
				t.Fatalf("snapshot after crash recovery: %v", err)
			}
		})
	}
}

func crc32Checksum(p []byte) uint32 {
	return crc32.Checksum(p, crc32.MakeTable(crc32.Castagnoli))
}

// FuzzSegmentRecovery feeds arbitrary bytes as a segment file: Open must
// never panic, never error (single segment ⇒ any damage is a legal torn
// tail), and every replayed record must re-encode to a prefix of the input.
func FuzzSegmentRecovery(f *testing.F) {
	good, _ := encodeRecord(rec(OpCreate, "/seed"))
	f.Add([]byte{})
	f.Add(good)
	f.Add(append(good, 0x00, 0x01, 0x02))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, r, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("Open on fuzzed segment: %v", err)
		}
		defer l.Close()
		// Re-encode the replayed records: they must reproduce a byte prefix
		// of the input — recovery returns a prefix of history, nothing else.
		var prefix []byte
		for _, rc := range r.Records {
			frame, err := encodeRecord(rc)
			if err != nil {
				t.Fatalf("replayed record does not re-encode: %v", err)
			}
			prefix = append(prefix, frame...)
		}
		if len(prefix) > len(data) || string(data[:len(prefix)]) != string(prefix) {
			t.Fatalf("replayed records are not a prefix of the segment")
		}
	})
}
