// Package wal gives one metadata daemon a durable mutation history: an
// append-only write-ahead log of create/delete records plus periodic
// compaction into atomic-rename snapshots. A daemon appends each mutation
// before applying it, snapshots its full state every few thousand records,
// and after a crash recovers by loading the newest valid snapshot and
// replaying the log tail — the state machine above (mds.Node) sees exactly
// the prefix of history that reached disk.
//
// On-disk layout, one directory per daemon:
//
//	wal-%016x.log    log segments, ascending sequence numbers
//	snap-%016x.snap  state snapshots; snap-S covers every segment ≤ S
//	*.tmp            in-progress snapshot writes, discarded on open
//
// Every log record is framed as
//
//	len uint32 | crc uint32 | payload      (big endian; crc32c of payload)
//	payload: op uint8 | path bytes
//
// and a snapshot file is one frame of the same shape whose payload is the
// owner's opaque state blob prefixed by the covered sequence number. The CRC
// makes corruption detection explicit: recovery either replays an exact
// prefix of what was appended (a torn tail is truncated away) or fails
// loudly — it never hands back state that fails its checksum.
//
// Compaction (Snapshot) is crash-safe at every step: the current segment is
// fsynced, the next segment is created, the snapshot is written to a
// temporary file, fsynced, and renamed into place before the superseded
// files are purged. A crash between any two steps leaves a directory Open
// can recover: the extra segment replays as an empty (or short) tail, a
// missing snapshot falls back to the previous one plus the intact segments,
// and a leftover .tmp is ignored.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Record operations.
const (
	// OpCreate homes a file (metadata put + filter add).
	OpCreate uint8 = 1
	// OpDelete unlinks a file.
	OpDelete uint8 = 2
)

// Record is one logged mutation.
type Record struct {
	// Op is OpCreate or OpDelete.
	Op uint8
	// Path is the file path the mutation targets.
	Path string
}

// SyncPolicy selects when appends reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every append: nothing acknowledged is ever
	// lost, at one disk flush per mutation.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs at most once per interval, piggybacked on the
	// appends themselves: a machine crash loses at most the last interval's
	// records (a process crash loses nothing — writes reach the kernel
	// synchronously either way).
	SyncInterval
	// SyncNever leaves flushing to the kernel entirely.
	SyncNever
)

// String names the policy with the spelling ParseSyncPolicy accepts.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNever:
		return "never"
	default:
		return fmt.Sprintf("syncpolicy(%d)", int(p))
	}
}

// ParseSyncPolicy parses "always", "interval" or "never".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always", "":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown sync policy %q (want always, interval or never)", s)
	}
}

// Options configures a log.
type Options struct {
	// Sync is the fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period; zero selects 100ms.
	SyncEvery time.Duration
}

func (o Options) syncEvery() time.Duration {
	if o.SyncEvery <= 0 {
		return 100 * time.Millisecond
	}
	return o.SyncEvery
}

// Recovery reports what Open reconstructed from the directory.
type Recovery struct {
	// Snapshot is the newest valid snapshot payload, nil when none exists.
	Snapshot []byte
	// SnapshotSeq is the sequence number the snapshot covers (0 when none).
	SnapshotSeq uint64
	// Records are the log records after the snapshot, in append order.
	Records []Record
	// Torn reports that the last segment ended in a truncated or
	// CRC-corrupt frame; the bad tail was truncated away and Records holds
	// the intact prefix.
	Torn bool
}

// maxRecordBytes bounds one record frame; a length beyond it marks the
// frame (and everything after) corrupt rather than an allocation request.
const maxRecordBytes = 1 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks unrecoverable log or snapshot damage: corruption before
// the final segment's tail, a checksum-invalid snapshot with no older
// fallback, or a gap in the segment sequence. Recovery fails loudly with it
// rather than loading state that cannot be verified.
var ErrCorrupt = errors.New("wal: corrupt")

// Log is one daemon's write-ahead log: an open segment accepting appends
// plus the snapshot bookkeeping. Safe for concurrent use; appends serialize
// on an internal mutex.
type Log struct {
	dir  string
	opts Options

	mu            sync.Mutex
	f             *os.File
	seq           uint64 // sequence of the open segment
	sinceSnapshot uint64 // records appended (or replayed) since the last snapshot
	lastSync      time.Time
	dirty         bool
	closed        bool
}

func segmentName(seq uint64) string  { return fmt.Sprintf("wal-%016x.log", seq) }
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// parseSeq extracts the sequence number from a wal-/snap- file name.
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	body := name[len(prefix) : len(name)-len(suffix)]
	seq, err := strconv.ParseUint(body, 16, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

// Open opens (or creates) the log directory, recovers the newest valid
// snapshot plus the log tail after it, and returns a log positioned to
// append. The recovery rules:
//
//   - a leftover *.tmp (a snapshot write that never renamed) is deleted;
//   - the newest snapshot must pass its CRC — by the time a newer snapshot
//     exists its predecessors are purged, so a corrupt one is ErrCorrupt;
//   - segments after the snapshot must be contiguous; a gap is ErrCorrupt;
//   - a truncated or corrupt frame in the final segment is a torn tail:
//     the file is truncated to the intact prefix and recovery succeeds;
//     the same damage in an earlier segment is ErrCorrupt, because every
//     non-final segment was fsynced whole before its successor was created.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var segs, snaps []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSeq(name, "wal-", ".log"); ok {
			segs = append(segs, seq)
		}
		if seq, ok := parseSeq(name, "snap-", ".snap"); ok {
			snaps = append(snaps, seq)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] < snaps[j] })

	rec := &Recovery{}
	if len(snaps) > 0 {
		seq := snaps[len(snaps)-1]
		payload, err := readSnapshotFile(filepath.Join(dir, snapshotName(seq)), seq)
		if err != nil {
			return nil, nil, err
		}
		rec.Snapshot, rec.SnapshotSeq = payload, seq
	}

	// Segments at or before the snapshot are covered by it; segments after
	// it replay in order and must be contiguous starting at snapshot+1.
	var replay []uint64
	for _, s := range segs {
		if s > rec.SnapshotSeq {
			replay = append(replay, s)
		}
	}
	if len(replay) > 0 && replay[0] != rec.SnapshotSeq+1 {
		return nil, nil, fmt.Errorf("%w: first segment after snapshot %d is %d", ErrCorrupt, rec.SnapshotSeq, replay[0])
	}
	for i := 1; i < len(replay); i++ {
		if replay[i] != replay[i-1]+1 {
			return nil, nil, fmt.Errorf("%w: segment gap between %d and %d", ErrCorrupt, replay[i-1], replay[i])
		}
	}

	l := &Log{dir: dir, opts: opts, lastSync: time.Now()}
	for i, seq := range replay {
		last := i == len(replay)-1
		records, goodLen, torn, err := readSegment(filepath.Join(dir, segmentName(seq)))
		if err != nil {
			return nil, nil, err
		}
		if torn && !last {
			return nil, nil, fmt.Errorf("%w: segment %d has a torn tail but is not the final segment", ErrCorrupt, seq)
		}
		if torn {
			// Truncate the garbage so later appends extend the intact
			// prefix instead of burying a bad frame mid-file.
			if err := os.Truncate(filepath.Join(dir, segmentName(seq)), goodLen); err != nil {
				return nil, nil, fmt.Errorf("wal: truncating torn tail of segment %d: %w", seq, err)
			}
			rec.Torn = true
		}
		rec.Records = append(rec.Records, records...)
	}

	seq := rec.SnapshotSeq + 1
	if len(replay) > 0 {
		seq = replay[len(replay)-1]
	}
	f, err := os.OpenFile(filepath.Join(dir, segmentName(seq)), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: opening segment %d: %w", seq, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seeking segment %d: %w", seq, err)
	}
	l.f, l.seq = f, seq
	l.sinceSnapshot = uint64(len(rec.Records))
	if err := syncDir(dir); err != nil {
		f.Close()
		return nil, nil, err
	}
	return l, rec, nil
}

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

// Seq returns the open segment's sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// RecordsSinceSnapshot returns how many records the log holds beyond the
// last snapshot — the owner's compaction cadence signal.
func (l *Log) RecordsSinceSnapshot() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sinceSnapshot
}

// Append writes records to the open segment, one frame each, in one write
// call, then applies the sync policy. The records are durable (per policy)
// when Append returns; callers apply the mutation to their in-memory state
// only after that — write-ahead, not write-behind.
func (l *Log) Append(recs ...Record) error {
	if len(recs) == 0 {
		return nil
	}
	buf := make([]byte, 0, 64*len(recs))
	for _, r := range recs {
		frame, err := encodeRecord(r)
		if err != nil {
			return err
		}
		buf = append(buf, frame...)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.sinceSnapshot += uint64(len(recs))
	l.dirty = true
	switch l.opts.Sync {
	case SyncAlways:
		return l.syncLocked()
	case SyncInterval:
		if time.Since(l.lastSync) >= l.opts.syncEvery() {
			return l.syncLocked()
		}
	}
	return nil
}

// Sync flushes the open segment to stable storage regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	l.dirty = false
	l.lastSync = time.Now()
	return nil
}

// Snapshot compacts the log: state (the owner's full serialized state,
// reflecting every record appended so far) supersedes the current segment
// and everything before it. Steps, each crash-safe against the next:
//
//  1. fsync the current segment (so a crash mid-compaction can still
//     replay it under the previous snapshot),
//  2. create and fsync the next segment,
//  3. write state to a .tmp file, fsync, rename to snap-<seq>, fsync dir,
//  4. purge superseded segments and snapshots (best effort — leftovers
//     are ignored or re-purged by the next Open).
func (l *Log) Snapshot(state []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return errors.New("wal: log closed")
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	covered := l.seq
	nextSeq := l.seq + 1
	next, err := os.OpenFile(filepath.Join(l.dir, segmentName(nextSeq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment %d: %w", nextSeq, err)
	}
	if err := next.Sync(); err != nil {
		next.Close()
		return fmt.Errorf("wal: fsync new segment: %w", err)
	}
	if err := writeSnapshotFile(l.dir, covered, state); err != nil {
		next.Close()
		return err
	}
	old := l.f
	l.f, l.seq = next, nextSeq
	l.sinceSnapshot = 0
	l.dirty = false
	old.Close()
	// Purge everything the new snapshot supersedes; failures leave files
	// the next Open ignores.
	for seq := covered; seq > 0; seq-- {
		p := filepath.Join(l.dir, segmentName(seq))
		if err := os.Remove(p); err != nil {
			break // older ones were purged by earlier snapshots
		}
	}
	for seq := covered - 1; seq > 0; seq-- {
		p := filepath.Join(l.dir, snapshotName(seq))
		if err := os.Remove(p); err != nil {
			break
		}
	}
	return syncDir(l.dir)
}

// Close flushes and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	err := l.syncLocked()
	l.closed = true
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Abandon closes the log without flushing — the crash-simulation exit used
// by kill tests and KillMDS: whatever the kernel already has is what a
// restarted daemon will see, exactly as after a SIGKILL.
func (l *Log) Abandon() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	return l.f.Close()
}

// encodeRecord frames one record: len | crc | (op | path).
func encodeRecord(r Record) ([]byte, error) {
	if r.Op != OpCreate && r.Op != OpDelete {
		return nil, fmt.Errorf("wal: unknown record op %d", r.Op)
	}
	payload := make([]byte, 1+len(r.Path))
	payload[0] = r.Op
	copy(payload[1:], r.Path)
	if len(payload) > maxRecordBytes {
		return nil, fmt.Errorf("wal: record %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)
	return frame, nil
}

// readSegment parses one segment file, returning the intact records, the
// byte length of the intact prefix, and whether a torn (truncated or
// CRC-corrupt) tail was found after it.
func readSegment(path string) (records []Record, goodLen int64, torn bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, false, fmt.Errorf("wal: reading segment: %w", err)
	}
	off := int64(0)
	for int64(len(data))-off > 0 {
		rest := data[off:]
		if len(rest) < 8 {
			return records, off, true, nil
		}
		n := binary.BigEndian.Uint32(rest[0:4])
		if n < 1 || n > maxRecordBytes {
			return records, off, true, nil
		}
		if uint64(len(rest)-8) < uint64(n) {
			return records, off, true, nil
		}
		payload := rest[8 : 8+n]
		if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(rest[4:8]) {
			return records, off, true, nil
		}
		op := payload[0]
		if op != OpCreate && op != OpDelete {
			return records, off, true, nil
		}
		records = append(records, Record{Op: op, Path: string(payload[1:])})
		off += int64(8 + n)
	}
	return records, off, false, nil
}

// writeSnapshotFile writes one snapshot frame (len | crc | seq+state) to a
// temp file and renames it into place.
func writeSnapshotFile(dir string, seq uint64, state []byte) error {
	payload := make([]byte, 8+len(state))
	binary.BigEndian.PutUint64(payload[0:8], seq)
	copy(payload[8:], state)
	frame := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[8:], payload)

	final := filepath.Join(dir, snapshotName(seq))
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot temp: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: writing snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: fsync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: closing snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: installing snapshot: %w", err)
	}
	return syncDir(dir)
}

// readSnapshotFile loads and verifies one snapshot file, returning its
// state payload.
func readSnapshotFile(path string, wantSeq uint64) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("wal: reading snapshot: %w", err)
	}
	if len(data) < 16 {
		return nil, fmt.Errorf("%w: snapshot %s truncated (%d bytes)", ErrCorrupt, filepath.Base(path), len(data))
	}
	n := binary.BigEndian.Uint32(data[0:4])
	if uint64(n) != uint64(len(data)-8) {
		return nil, fmt.Errorf("%w: snapshot %s length %d, frame says %d", ErrCorrupt, filepath.Base(path), len(data)-8, n)
	}
	payload := data[8:]
	if crc32.Checksum(payload, crcTable) != binary.BigEndian.Uint32(data[4:8]) {
		return nil, fmt.Errorf("%w: snapshot %s checksum mismatch", ErrCorrupt, filepath.Base(path))
	}
	if seq := binary.BigEndian.Uint64(payload[0:8]); seq != wantSeq {
		return nil, fmt.Errorf("%w: snapshot %s claims seq %d", ErrCorrupt, filepath.Base(path), seq)
	}
	return payload[8:], nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening dir for sync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: fsync dir: %w", err)
	}
	return nil
}
