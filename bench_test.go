package ghba_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// drives the corresponding experiment at a reduced scale so `go test
// -bench=. -benchmem` regenerates every result in minutes; cmd/ghbabench
// runs the full-scale versions. Custom metrics attach the figure's headline
// quantity to the benchmark output (latencies in ms, message counts, Γ).

import (
	"context"
	"strconv"
	"testing"
	"time"

	"ghba"

	"ghba/internal/bloom"
	"ghba/internal/experiments"
	"ghba/internal/trace"
)

// BenchmarkEq1FalsePositive evaluates Equation 1 across the θ range used in
// the paper's configurations.
func BenchmarkEq1FalsePositive(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		for theta := 1; theta <= 32; theta++ {
			sink += bloom.SegmentFalsePositive(theta, 16)
		}
	}
	b.ReportMetric(bloom.SegmentFalsePositive(10, 16)*1e6, "fp_ppm_theta10")
	_ = sink
}

func quickFig6(b *testing.B, n int) experiments.Fig6Config {
	b.Helper()
	cfg := experiments.DefaultFig6Config(trace.HP(), n)
	cfg.Ms = []int{1, 2, 4, 6, 9, 12, 15}
	cfg.Ops = 4_000
	cfg.FilesPerSubtrace = 2_500
	return cfg
}

// BenchmarkFig6NormalizedThroughput regenerates Fig 6: Γ versus group size
// M for N=30 (the N=100 variant runs under cmd/ghbabench -fig 6).
func BenchmarkFig6NormalizedThroughput(b *testing.B) {
	var bestM int
	var bestG float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig6(quickFig6(b, 30))
		if err != nil {
			b.Fatal(err)
		}
		bestG, bestM = 0, 0
		for _, r := range rows {
			if r.Gamma > bestG {
				bestG, bestM = r.Gamma, r.M
			}
		}
	}
	b.ReportMetric(float64(bestM), "optimal_M")
	b.ReportMetric(bestG, "gamma_at_opt")
}

// BenchmarkFig7OptimalGroupSize regenerates Fig 7: optimal M as a function
// of N.
func BenchmarkFig7OptimalGroupSize(b *testing.B) {
	cfg := experiments.DefaultFig7Config(trace.HP())
	cfg.Ns = []int{10, 30, 60}
	cfg.Ms = []int{1, 2, 3, 5, 7, 9, 12}
	cfg.Ops = 2_500
	var lastM int
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		lastM = rows[len(rows)-1].OptimalM
	}
	b.ReportMetric(float64(lastM), "optimal_M_at_N60")
}

func latencyBench(b *testing.B, figure int) {
	cfg := experiments.DefaultLatencyFigConfig(figure)
	cfg.N = 20
	cfg.M = 5
	cfg.Ops = 8_000
	cfg.Interval = 4_000
	cfg.FilesPerSubtrace = 2_500
	cfg.VirtualReplicaMB = 24
	// Keep the paper's top and bottom budget for the reduced-scale bench.
	cfg.MemBudgetsMB = []uint64{cfg.MemBudgetsMB[0], 160}
	var hbaPressure, ghbaPressure time.Duration
	for i := 0; i < b.N; i++ {
		series, err := experiments.LatencyFig(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			if s.MemBudgetMB != 160 {
				continue
			}
			switch s.Scheme {
			case "HBA":
				hbaPressure = s.Final()
			case "G-HBA":
				ghbaPressure = s.Final()
			}
		}
	}
	b.ReportMetric(float64(hbaPressure)/1e6, "hba_lowmem_ms")
	b.ReportMetric(float64(ghbaPressure)/1e6, "ghba_lowmem_ms")
}

// BenchmarkFig8LatencyHP regenerates Fig 8 (HP trace).
func BenchmarkFig8LatencyHP(b *testing.B) { latencyBench(b, 8) }

// BenchmarkFig9LatencyRES regenerates Fig 9 (RES trace).
func BenchmarkFig9LatencyRES(b *testing.B) { latencyBench(b, 9) }

// BenchmarkFig10LatencyINS regenerates Fig 10 (INS trace).
func BenchmarkFig10LatencyINS(b *testing.B) { latencyBench(b, 10) }

// BenchmarkFig11Migration regenerates Fig 11: replicas migrated on MDS
// insertion for HBA, hash placement and G-HBA.
func BenchmarkFig11Migration(b *testing.B) {
	var rows []experiments.Fig11Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig11([]int{10, 30, 60, 100}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.HBA), "hba_migrated_N100")
	b.ReportMetric(float64(last.Hash), "hash_migrated_N100")
	b.ReportMetric(float64(last.GHBA), "ghba_migrated_N100")
}

// BenchmarkFig12UpdateLatency regenerates Fig 12: stale-replica update
// latency, HBA versus G-HBA.
func BenchmarkFig12UpdateLatency(b *testing.B) {
	cfg := experiments.DefaultFig12Config(trace.HP(), 30)
	cfg.Updates = 30
	cfg.FilesPerSubtrace = 1_500
	var rows []experiments.Fig12Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig12(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		switch r.Scheme {
		case "HBA":
			b.ReportMetric(float64(r.MeanLatency)/1e6, "hba_update_ms")
		case "G-HBA":
			b.ReportMetric(float64(r.MeanLatency)/1e6, "ghba_update_ms")
		}
	}
}

// BenchmarkFig13HitRates regenerates Fig 13: the share of queries served
// per hierarchy level as N grows.
func BenchmarkFig13HitRates(b *testing.B) {
	cfg := experiments.DefaultFig13Config()
	cfg.Ns = []int{10, 50, 100}
	cfg.Ops = 6_000
	cfg.FilesPerSubtrace = 2_000
	var rows []experiments.Fig13Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig13(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(100*(last.L1+last.L2), "pct_L1L2_N100")
	b.ReportMetric(100*(last.L1+last.L2+last.L3), "pct_in_group_N100")
}

// BenchmarkFig14PrototypeLatency regenerates Fig 14 on the TCP prototype.
func BenchmarkFig14PrototypeLatency(b *testing.B) {
	cfg := experiments.DefaultFig14Config()
	cfg.N = 10
	cfg.M = 4
	cfg.Ops = 600
	cfg.Interval = 300
	cfg.Files = 1_500
	cfg.ResidentReplicaLimit = 4
	cfg.DiskPenalty = time.Millisecond
	var hbaMS, ghbaMS float64
	for i := 0; i < b.N; i++ {
		series, err := experiments.Fig14(cfg)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			switch s.Scheme {
			case "HBA":
				hbaMS = float64(s.Final()) / 1e6
			case "G-HBA":
				ghbaMS = float64(s.Final()) / 1e6
			}
		}
	}
	b.ReportMetric(hbaMS, "hba_ms")
	b.ReportMetric(ghbaMS, "ghba_ms")
}

// BenchmarkFig15AddNodeMessages regenerates Fig 15 on the TCP prototype.
func BenchmarkFig15AddNodeMessages(b *testing.B) {
	var rows []experiments.Fig15Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig15(12, 4, 4, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(float64(last.HBAMsgs), "hba_msgs")
	b.ReportMetric(float64(last.GHBAMsgs), "ghba_msgs")
}

// BenchmarkTable5MemoryOverhead regenerates Table 5: relative per-MDS
// memory overhead normalized to BFA8.
func BenchmarkTable5MemoryOverhead(b *testing.B) {
	var rows []experiments.Table5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table5([]int{20, 60, 100}, 2_000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.GHBA, "ghba_rel_N100")
	b.ReportMetric(last.PaperRow.GHBA, "paper_rel_N100")
}

// BenchmarkTables34TraceStats regenerates the intensified-trace statistics
// of Tables 3 and 4.
func BenchmarkTables34TraceStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Tables34(5_000, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDigestLookup measures one full L1→L4 lookup through the hash-once
// digest pipeline: the path is hashed exactly once and every filter probe in
// the hierarchy replays the digest's cached bit positions. Run with
// -benchmem; the steady-state read path performs no heap allocations beyond
// Go runtime bookkeeping. The hot/cold split mirrors real traffic: hot paths
// resolve at L1/L2, cold and absent paths walk the full hierarchy.
func BenchmarkDigestLookup(b *testing.B) {
	sim, err := ghba.New(ghba.Config{NumMDS: 30, ExpectedFilesPerMDS: 2_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	paths := make([]string, 5_000)
	for i := range paths {
		paths[i] = "/bench/digest/f" + strconv.Itoa(i)
	}
	if err := sim.CreateAll(context.Background(), paths); err != nil {
		b.Fatal(err)
	}
	absent := make([]string, 512)
	for i := range absent {
		absent[i] = "/bench/digest/absent" + strconv.Itoa(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%16 == 15 {
			sim.Lookup(context.Background(), absent[(i/16)%len(absent)])
		} else {
			sim.Lookup(context.Background(), paths[i%len(paths)])
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
}

// BenchmarkCoreLookup measures the simulator's raw lookup throughput — not
// a paper figure, but the number that bounds every trace-driven experiment.
func BenchmarkCoreLookup(b *testing.B) {
	sim, err := ghba.New(ghba.Config{NumMDS: 30, ExpectedFilesPerMDS: 2_000, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	paths := make([]string, 5_000)
	for i := range paths {
		paths[i] = "/bench/f" + strconv.Itoa(i)
	}
	if err := sim.CreateAll(context.Background(), paths); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Lookup(context.Background(), paths[i%len(paths)])
	}
}

// BenchmarkLookupParallel measures wall-clock lookup throughput of the
// concurrent read path at increasing worker counts. On multi-core hardware
// the lookups/s metric scales with workers until the observability locks or
// the core count saturate; the single-worker case doubles as the serial
// baseline for the engine.
func BenchmarkLookupParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
			sim, err := ghba.New(ghba.Config{NumMDS: 30, ExpectedFilesPerMDS: 2_000, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			paths := make([]string, 5_000)
			for i := range paths {
				paths[i] = "/bench/par" + strconv.Itoa(i)
			}
			if err := sim.CreateAll(context.Background(), paths); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ghba.LookupParallel(context.Background(), sim, paths, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(
				float64(len(paths))*float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
		})
	}
}

// BenchmarkBloomFilterOps measures the substrate primitives.
func BenchmarkBloomFilterOps(b *testing.B) {
	f, err := bloom.NewForCapacity(100_000, 16)
	if err != nil {
		b.Fatal(err)
	}
	key := []byte("/some/path/to/a/file.dat")
	b.Run("Add", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Add(key)
		}
	})
	b.Run("Contains", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f.Contains(key)
		}
	})
}
