package ghba_test

// Cross-backend equivalence: the unified Backend API's core promise is that
// the in-process simulation and the TCP prototype implement the same
// protocol. With mirrored configurations (identical seeds, filter
// geometries, XOR-delta thresholds, per-lookup L1 learning) a fixed-seed
// mixed trace must replay onto identical homes, identical existence bits,
// and identical hierarchy-level tallies on both transports — any drift in
// placement draws, replica shipping, L1 observation, or descent logic shows
// up as a per-op mismatch here.

import (
	"context"
	"testing"

	"ghba"
	"ghba/internal/trace"
)

// equivalenceConfig mirrors every knob that influences observable protocol
// behaviour across the two backends.
func equivalenceConfig() ghba.Config {
	return ghba.Config{
		NumMDS:              9,
		MaxGroupSize:        3, // 3 groups of 3 under the shared even partition
		ExpectedFilesPerMDS: 400,
		ShipBatch:           1, // ship at every threshold crossing, the paper's protocol
		Seed:                5,
	}
}

func TestCrossBackendEquivalence(t *testing.T) {
	runCrossBackendEquivalence(t, equivalenceConfig())
}

// TestCrossBackendEquivalenceBlocked replays the same contract with
// cache-line-blocked filters on both transports. Beyond re-proving protocol
// agreement under the alternate probe schedule, it exercises the blocked
// wire geometry tag end to end: every replica ship and snapshot crossing the
// TCP boundary marshals with the blocked magic and must decode to the same
// filter the simulation holds in memory.
func TestCrossBackendEquivalenceBlocked(t *testing.T) {
	cfg := equivalenceConfig()
	cfg.BlockedFilters = true
	runCrossBackendEquivalence(t, cfg)
}

func runCrossBackendEquivalence(t *testing.T, cfg ghba.Config) {
	if testing.Short() {
		t.Skip("loopback TCP replay is not short")
	}
	ctx := context.Background()

	sim, err := ghba.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tcp, err := ghba.StartPrototype(ghba.PrototypeConfig{
		Config: cfg,
		// The simulation learns L1 observations at every found lookup; batch
		// size 1 makes the daemons' replicated LRU arrays follow the same
		// per-lookup schedule.
		ObserveBatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tcp.Close()

	// One mixed trace, materialized once so both backends replay the exact
	// same operation sequence: 60% lookups, 25% creates, 15% deletes —
	// enough mutation pressure that XOR-delta crossings and replica ships
	// fire many times.
	gen, err := trace.NewGenerator(trace.Config{
		Profile:          trace.MustMixProfile(60, 25, 15),
		TIF:              2,
		FilesPerSubtrace: 400,
		Seed:             11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var initial []string
	gen.EachInitialPath(func(p string) bool {
		initial = append(initial, p)
		return true
	})
	ops := make([]ghba.Op, 1_500)
	touched := make(map[string]struct{})
	for i := range ops {
		ops[i] = ghba.TraceOp(gen.Next())
		touched[ops[i].Path] = struct{}{}
	}

	backends := []ghba.Backend{sim, tcp}
	results := make([][]ghba.Result, len(backends))
	for i, b := range backends {
		if err := b.CreateAll(ctx, initial); err != nil {
			t.Fatalf("%s: populate: %v", b.Name(), err)
		}
		// One worker: both backends dispatch the ops in order with the
		// identically derived worker-0 RNG.
		res, err := ghba.ApplyParallel(ctx, b, ops, 1)
		if err != nil {
			t.Fatalf("%s: replay: %v", b.Name(), err)
		}
		if err := b.Flush(ctx); err != nil {
			t.Fatalf("%s: flush: %v", b.Name(), err)
		}
		results[i] = res
	}

	// Every operation agrees on home, existence and serving level.
	// (Latency is simulated on one side and wall clock on the other — the
	// one field deliberately outside the contract.)
	diverged := 0
	for i := range ops {
		s, p := results[0][i], results[1][i]
		if s.Home != p.Home || s.Found != p.Found || s.Level != p.Level {
			t.Errorf("op %d (%v %q): sim (home=%d found=%v L%d) vs tcp (home=%d found=%v L%d)",
				i, ops[i].Kind, ops[i].Path, s.Home, s.Found, s.Level, p.Home, p.Found, p.Level)
			if diverged++; diverged > 10 {
				t.Fatal("too many divergences, stopping")
			}
		}
	}

	// The hierarchy served the same number of lookups at every level.
	if sim.LevelCounts() != tcp.LevelCounts() {
		t.Errorf("level tallies diverged:\n  sim %v\n  tcp %v", sim.LevelCounts(), tcp.LevelCounts())
	}

	// Ground truth agrees path by path: same namespace size, and every path
	// the trace touched is homed identically (or absent on both).
	if sim.FileCount() != tcp.FileCount() {
		t.Errorf("file counts diverged: sim %d vs tcp %d", sim.FileCount(), tcp.FileCount())
	}
	for p := range touched {
		if sh, th := sim.HomeOf(p), tcp.HomeOf(p); sh != th {
			t.Errorf("ground truth for %q diverged: sim home %d vs tcp home %d", p, sh, th)
		}
	}

	// Both backends shipped XOR-delta replica updates (the mutation
	// pressure crossed thresholds), and equally often.
	if sim.ReplicaUpdates() == 0 {
		t.Error("replay shipped no replica updates — thresholds never crossed?")
	}
	if sim.ReplicaUpdates() != tcp.ReplicaUpdates() {
		t.Errorf("replica-update counts diverged: sim %d vs tcp %d",
			sim.ReplicaUpdates(), tcp.ReplicaUpdates())
	}
}
